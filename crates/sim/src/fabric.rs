//! The multi-GPU Infinity-Fabric-style interconnect model.
//!
//! The paper profiles collectives on the "AMD MI300X Infinity Platform": an
//! 8×GPU node with a fully connected topology, each GPU linked to the seven
//! others at 64 GB/s unidirectional per link. Collective completion time is
//! modelled with the standard α–β (latency–bandwidth) decomposition over
//! that topology; the RCCL-like layer in `fingrav-workloads` turns the
//! resulting time and per-phase traffic into a power-relevant kernel
//! descriptor for the *local* GPU (the one whose power is being profiled).

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Interconnect topology and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// GPUs in the node.
    pub n_gpus: u32,
    /// Unidirectional bandwidth per peer link, GB/s.
    pub link_gbps: f64,
    /// Fixed software + fabric latency per communication phase.
    pub alpha: SimDuration,
    /// Fraction of nominal link bandwidth achievable by the collective
    /// library (protocol and packing overheads).
    pub link_efficiency: f64,
    /// Per-kernel fixed launch/teardown cost inside the collective.
    pub kernel_overhead: SimDuration,
}

impl Default for FabricConfig {
    /// 8×MI300X fully connected node, 64 GB/s links.
    fn default() -> Self {
        FabricConfig {
            n_gpus: 8,
            link_gbps: 64.0,
            alpha: SimDuration::from_micros(9),
            link_efficiency: 0.82,
            kernel_overhead: SimDuration::from_micros(4),
        }
    }
}

/// Collective communication algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveAlgorithm {
    /// Fully-connected one-phase exchange: every GPU talks to every peer
    /// concurrently over dedicated links. Optimal on the MI300X Infinity
    /// Platform's all-to-all topology.
    Direct,
    /// Classic ring: `n-1` steps, each moving one shard to the next
    /// neighbour. More latency, but the standard choice on lower-degree
    /// topologies; modelled for comparison.
    Ring,
}

/// Supported collective operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every GPU gathers every other GPU's shard.
    AllGather,
    /// Element-wise reduction across GPUs, result replicated everywhere.
    AllReduce,
}

impl CollectiveKind {
    /// Short lowercase name, e.g. for kernel labels.
    pub fn short_name(&self) -> &'static str {
        match self {
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::AllReduce => "all-reduce",
        }
    }

    /// Number of fully-connected communication phases the direct algorithm
    /// needs: all-gather is a single exchange; all-reduce is reduce-scatter
    /// followed by all-gather.
    pub fn phases(&self) -> u32 {
        match self {
            CollectiveKind::AllGather => 1,
            CollectiveKind::AllReduce => 2,
        }
    }
}

/// Breakdown of one collective's predicted execution on the local GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// Total predicted completion time.
    pub time: SimDuration,
    /// Bytes this GPU sends over the fabric.
    pub bytes_sent: f64,
    /// Bytes this GPU receives over the fabric.
    pub bytes_received: f64,
    /// Bytes this GPU reads/writes against its own HBM.
    pub local_hbm_bytes: f64,
    /// Fraction of the time spent in the fixed-latency (α) term; close to
    /// 1.0 for latency-bound transfers.
    pub alpha_fraction: f64,
}

/// The fully connected ("direct") collective algorithm cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fabric {
    cfg: FabricConfig,
}

impl Fabric {
    /// Creates a fabric model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than 2 GPUs,
    /// non-positive bandwidth or efficiency).
    pub fn new(cfg: FabricConfig) -> Self {
        assert!(cfg.n_gpus >= 2, "a collective needs at least two GPUs");
        assert!(cfg.link_gbps > 0.0, "link bandwidth must be positive");
        assert!(
            cfg.link_efficiency > 0.0 && cfg.link_efficiency <= 1.0,
            "link efficiency must be in (0, 1]"
        );
        Fabric { cfg }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Predicts the cost of running `kind` over a total payload of
    /// `message_bytes` (the full buffer size, matching the size convention
    /// of collective benchmarks: a "1 GB all-gather" produces 1 GB of
    /// output on every GPU), using the topology-optimal direct algorithm.
    pub fn collective_cost(&self, kind: CollectiveKind, message_bytes: u64) -> CollectiveCost {
        self.collective_cost_with(CollectiveAlgorithm::Direct, kind, message_bytes)
    }

    /// Predicts the cost under a specific algorithm.
    pub fn collective_cost_with(
        &self,
        algorithm: CollectiveAlgorithm,
        kind: CollectiveKind,
        message_bytes: u64,
    ) -> CollectiveCost {
        let n = self.cfg.n_gpus as f64;
        let peers = n - 1.0;
        let shard = message_bytes as f64 / n;
        let link_bw = self.cfg.link_gbps * 1e9 * self.cfg.link_efficiency;

        let (alpha_s, beta_s) = match algorithm {
            CollectiveAlgorithm::Direct => {
                // One fully-connected phase per logical step: every GPU
                // exchanges its shard with all peers concurrently over
                // dedicated links; each phase is paced by a single link
                // carrying one shard.
                let phases = kind.phases() as f64;
                (
                    self.cfg.alpha.as_secs_f64() * phases + self.cfg.kernel_overhead.as_secs_f64(),
                    (shard / link_bw) * phases,
                )
            }
            CollectiveAlgorithm::Ring => {
                // n-1 neighbour steps per logical phase, each moving one
                // shard over one link.
                let steps = peers * kind.phases() as f64;
                (
                    self.cfg.alpha.as_secs_f64() * steps + self.cfg.kernel_overhead.as_secs_f64(),
                    (shard / link_bw) * steps,
                )
            }
        };
        let total_s = alpha_s + beta_s;

        let (sent, received, hbm) = match kind {
            CollectiveKind::AllGather => {
                // Send own shard to each peer; receive each peer's shard.
                let sent = shard * peers;
                let recv = shard * peers;
                // Local HBM: read own shard once per peer send (cached after
                // first), write all received shards.
                let hbm = shard + recv;
                (sent, recv, hbm)
            }
            CollectiveKind::AllReduce => {
                // Reduce-scatter + all-gather: each phase moves one shard
                // per link; locally the reduction reads and writes shards.
                let sent = 2.0 * shard * peers;
                let recv = 2.0 * shard * peers;
                let hbm = 2.0 * (shard * peers + shard);
                (sent, recv, hbm)
            }
        };

        CollectiveCost {
            time: SimDuration::from_secs_f64(total_s),
            bytes_sent: sent,
            bytes_received: received,
            local_hbm_bytes: hbm,
            alpha_fraction: alpha_s / total_s,
        }
    }

    /// Classifies a message size as latency-bound using the paper's
    /// criterion: "latency-bound if collective latency at/before this size
    /// does not increase commensurate to data-transfer size". We test
    /// whether doubling the size increases time by clearly less than 2×.
    pub fn is_latency_bound(&self, kind: CollectiveKind, message_bytes: u64) -> bool {
        let here = self.collective_cost(kind, message_bytes).time.as_secs_f64();
        let double = self
            .collective_cost(kind, message_bytes.saturating_mul(2))
            .time
            .as_secs_f64();
        double < 1.5 * here
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Fabric::new(FabricConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * 1024;

    fn fabric() -> Fabric {
        Fabric::default()
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let f = fabric();
        assert!(f.is_latency_bound(CollectiveKind::AllGather, 64 * KIB));
        assert!(f.is_latency_bound(CollectiveKind::AllGather, 128 * KIB));
        assert!(f.is_latency_bound(CollectiveKind::AllReduce, 64 * KIB));
        assert!(f.is_latency_bound(CollectiveKind::AllReduce, 128 * KIB));
    }

    #[test]
    fn large_messages_are_bandwidth_bound() {
        let f = fabric();
        assert!(!f.is_latency_bound(CollectiveKind::AllGather, 512 * MIB));
        assert!(!f.is_latency_bound(CollectiveKind::AllGather, 1024 * MIB));
        assert!(!f.is_latency_bound(CollectiveKind::AllReduce, 512 * MIB));
        assert!(!f.is_latency_bound(CollectiveKind::AllReduce, 1024 * MIB));
    }

    #[test]
    fn time_grows_monotonically_with_size() {
        let f = fabric();
        let mut last = SimDuration::ZERO;
        for bytes in [64 * KIB, MIB, 16 * MIB, 256 * MIB, 1024 * MIB] {
            let t = f.collective_cost(CollectiveKind::AllGather, bytes).time;
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn allreduce_costs_about_twice_allgather_at_large_sizes() {
        let f = fabric();
        let ag = f
            .collective_cost(CollectiveKind::AllGather, 1024 * MIB)
            .time
            .as_secs_f64();
        let ar = f
            .collective_cost(CollectiveKind::AllReduce, 1024 * MIB)
            .time
            .as_secs_f64();
        let ratio = ar / ag;
        assert!((1.7..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bandwidth_bound_sizes_run_in_milliseconds() {
        // Sanity: a 1 GB all-gather over 7x64 GB/s links lands in the
        // low-millisecond range, matching training-scale collectives.
        let f = fabric();
        let t = f
            .collective_cost(CollectiveKind::AllGather, 1024 * MIB)
            .time
            .as_millis_f64();
        assert!(t > 0.5 && t < 20.0, "time {t} ms");
    }

    #[test]
    fn latency_bound_sizes_run_in_tens_of_microseconds() {
        let f = fabric();
        let t = f
            .collective_cost(CollectiveKind::AllGather, 64 * KIB)
            .time
            .as_micros_f64();
        assert!(t > 5.0 && t < 100.0, "time {t} us");
    }

    #[test]
    fn alpha_fraction_tracks_boundedness() {
        let f = fabric();
        let small = f.collective_cost(CollectiveKind::AllGather, 64 * KIB);
        let large = f.collective_cost(CollectiveKind::AllGather, 1024 * MIB);
        assert!(small.alpha_fraction > 0.9, "{}", small.alpha_fraction);
        assert!(large.alpha_fraction < 0.1, "{}", large.alpha_fraction);
    }

    #[test]
    fn traffic_accounting_is_symmetric() {
        let f = fabric();
        for kind in [CollectiveKind::AllGather, CollectiveKind::AllReduce] {
            let c = f.collective_cost(kind, 256 * MIB);
            assert!((c.bytes_sent - c.bytes_received).abs() < 1.0);
            assert!(c.local_hbm_bytes > 0.0);
        }
    }

    #[test]
    fn ring_is_slower_than_direct_on_full_connectivity() {
        // On an all-to-all topology the direct algorithm wins at every
        // size: the ring serializes what direct does in parallel.
        let f = fabric();
        for bytes in [64 * KIB, MIB, 256 * MIB, 1024 * MIB] {
            for kind in [CollectiveKind::AllGather, CollectiveKind::AllReduce] {
                let direct = f.collective_cost_with(CollectiveAlgorithm::Direct, kind, bytes);
                let ring = f.collective_cost_with(CollectiveAlgorithm::Ring, kind, bytes);
                assert!(
                    ring.time > direct.time,
                    "{kind:?} {bytes}B: ring {} <= direct {}",
                    ring.time,
                    direct.time
                );
            }
        }
    }

    #[test]
    fn ring_latency_scales_with_step_count() {
        let f = fabric();
        let ag = f.collective_cost_with(
            CollectiveAlgorithm::Ring,
            CollectiveKind::AllGather,
            64 * KIB,
        );
        // 7 steps x 9 us alpha plus overhead dominates at small sizes.
        let floor_us = 7.0 * 9.0;
        assert!(
            ag.time.as_micros_f64() > floor_us,
            "ring AG latency {} us below the alpha floor",
            ag.time.as_micros_f64()
        );
    }

    #[test]
    fn phase_counts() {
        assert_eq!(CollectiveKind::AllGather.phases(), 1);
        assert_eq!(CollectiveKind::AllReduce.phases(), 2);
        assert_eq!(CollectiveKind::AllGather.short_name(), "all-gather");
        assert_eq!(CollectiveKind::AllReduce.short_name(), "all-reduce");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_gpu() {
        let _ = Fabric::new(FabricConfig {
            n_gpus: 1,
            ..FabricConfig::default()
        });
    }
}
