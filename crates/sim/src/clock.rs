//! CPU and GPU clock domains.
//!
//! Challenge **C2** of the paper exists because the GPU's power logger tags
//! samples with the *GPU timestamp counter* while kernel scheduling events
//! are observed in *CPU wall-clock time*. These two clocks disagree by an
//! offset, run at different nominal rates, and drift relative to each other
//! over time (the paper's related-work section calls out drift that Lang
//! et al. did not fully correct for).
//!
//! This module derives both observable clocks from the private simulation
//! timeline so that the sync machinery in `fingrav-core` has a genuine
//! disagreement to calibrate away.

use serde::{Deserialize, Serialize};

use crate::time::{CpuTime, GpuTicks, SimTime};

/// The host CPU wall clock.
///
/// Modelled as the simulation timeline shifted by a constant boot offset.
/// The methodology never learns the offset; it only ever compares CPU
/// timestamps with each other.
///
/// # Examples
///
/// ```
/// use fingrav_sim::clock::CpuClock;
/// use fingrav_sim::time::SimTime;
///
/// let clock = CpuClock::new(1_000_000);
/// let t = clock.now(SimTime::from_nanos(500));
/// assert_eq!(t.as_nanos(), 1_000_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuClock {
    boot_offset_ns: u64,
}

impl CpuClock {
    /// Creates a CPU clock whose epoch precedes the simulation epoch by
    /// `boot_offset_ns` nanoseconds.
    pub fn new(boot_offset_ns: u64) -> Self {
        CpuClock { boot_offset_ns }
    }

    /// The CPU wall-clock reading at simulation instant `t`.
    #[inline]
    pub fn now(&self, t: SimTime) -> CpuTime {
        CpuTime::from_nanos(self.boot_offset_ns + t.as_nanos())
    }

    /// Inverse of [`CpuClock::now`]; simulator-internal only.
    #[inline]
    pub fn to_sim(&self, t: CpuTime) -> SimTime {
        SimTime::from_nanos(t.as_nanos() - self.boot_offset_ns)
    }
}

/// The GPU timestamp counter.
///
/// Ticks at `nominal_hz` (100 MHz on MI300X-class hardware) but its
/// oscillator is off by `drift_ppm` parts per million relative to the CPU
/// clock, and it started counting at an arbitrary point before the
/// simulation epoch. Both imperfections are what the FinGraV sync step must
/// calibrate out.
///
/// # Examples
///
/// ```
/// use fingrav_sim::clock::GpuClock;
/// use fingrav_sim::time::SimTime;
///
/// // 100 MHz counter, no drift, zero epoch offset: 10 ns per tick.
/// let clock = GpuClock::new(100_000_000.0, 0.0, 0);
/// let ticks = clock.ticks_at(SimTime::from_nanos(1_000));
/// assert_eq!(ticks.as_raw(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuClock {
    nominal_hz: f64,
    drift_ppm: f64,
    epoch_offset_ticks: u64,
}

impl GpuClock {
    /// Creates a GPU clock.
    ///
    /// * `nominal_hz` — counter frequency as labelled (what documentation
    ///   and conversion software assume).
    /// * `drift_ppm` — true oscillator error in parts per million; positive
    ///   means the counter runs fast relative to the CPU clock.
    /// * `epoch_offset_ticks` — counter value at the simulation epoch.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_hz` is not strictly positive.
    pub fn new(nominal_hz: f64, drift_ppm: f64, epoch_offset_ticks: u64) -> Self {
        assert!(nominal_hz > 0.0, "GPU counter frequency must be positive");
        GpuClock {
            nominal_hz,
            drift_ppm,
            epoch_offset_ticks,
        }
    }

    /// Nominal counter frequency in Hz.
    #[inline]
    pub fn nominal_hz(&self) -> f64 {
        self.nominal_hz
    }

    /// True drift in parts per million (simulator ground truth; hidden from
    /// the methodology, which must estimate it).
    #[inline]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Nominal nanoseconds per tick, as conversion software would assume.
    #[inline]
    pub fn nominal_ns_per_tick(&self) -> f64 {
        1e9 / self.nominal_hz
    }

    /// Counter value at simulation instant `t`.
    #[inline]
    pub fn ticks_at(&self, t: SimTime) -> GpuTicks {
        let true_hz = self.nominal_hz * (1.0 + self.drift_ppm * 1e-6);
        let ticks = (t.as_nanos() as f64) * 1e-9 * true_hz;
        GpuTicks::from_raw(self.epoch_offset_ticks + ticks.round() as u64)
    }

    /// Inverse of [`GpuClock::ticks_at`]; simulator-internal ground truth.
    #[inline]
    pub fn to_sim(&self, ticks: GpuTicks) -> SimTime {
        let true_hz = self.nominal_hz * (1.0 + self.drift_ppm * 1e-6);
        let rel = ticks.as_raw().saturating_sub(self.epoch_offset_ticks) as f64;
        SimTime::from_nanos((rel / true_hz * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn cpu_clock_offsets_sim_time() {
        let c = CpuClock::new(5_000);
        assert_eq!(c.now(SimTime::ZERO).as_nanos(), 5_000);
        assert_eq!(c.now(SimTime::from_micros(1)).as_nanos(), 6_000);
    }

    #[test]
    fn cpu_clock_roundtrip() {
        let c = CpuClock::new(123_456);
        let t = SimTime::from_micros(789);
        assert_eq!(c.to_sim(c.now(t)), t);
    }

    #[test]
    fn gpu_clock_nominal_rate() {
        let g = GpuClock::new(100e6, 0.0, 0);
        assert_eq!(g.ticks_at(SimTime::from_micros(1)).as_raw(), 100);
        assert_eq!(g.ticks_at(SimTime::from_millis(1)).as_raw(), 100_000);
        assert!((g.nominal_ns_per_tick() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gpu_clock_epoch_offset_applied() {
        let g = GpuClock::new(100e6, 0.0, 7_000_000);
        assert_eq!(g.ticks_at(SimTime::ZERO).as_raw(), 7_000_000);
    }

    #[test]
    fn gpu_clock_positive_drift_runs_fast() {
        let no_drift = GpuClock::new(100e6, 0.0, 0);
        let fast = GpuClock::new(100e6, 50.0, 0);
        let t = SimTime::from_millis(1000);
        assert!(fast.ticks_at(t).as_raw() > no_drift.ticks_at(t).as_raw());
        // 50 ppm over 1 s of a 100 MHz counter is 5000 extra ticks.
        let extra = fast.ticks_at(t).as_raw() - no_drift.ticks_at(t).as_raw();
        assert_eq!(extra, 5_000);
    }

    #[test]
    fn gpu_clock_negative_drift_runs_slow() {
        let no_drift = GpuClock::new(100e6, 0.0, 0);
        let slow = GpuClock::new(100e6, -50.0, 0);
        let t = SimTime::from_millis(1000);
        assert!(slow.ticks_at(t).as_raw() < no_drift.ticks_at(t).as_raw());
    }

    #[test]
    fn gpu_clock_roundtrip_within_tick() {
        let g = GpuClock::new(100e6, 23.0, 42);
        let t = SimTime::from_micros(123_456);
        let back = g.to_sim(g.ticks_at(t));
        let err = back.as_nanos() as i64 - t.as_nanos() as i64;
        // Round trip is exact to within one 10 ns tick.
        assert!(err.abs() <= 10, "round-trip error {err} ns");
    }

    #[test]
    fn gpu_clock_monotone() {
        let g = GpuClock::new(100e6, -200.0, 999);
        let mut last = 0;
        for i in 0..1000u64 {
            let t = SimTime::ZERO + SimDuration::from_micros(i * 37);
            let ticks = g.ticks_at(t).as_raw();
            assert!(ticks >= last);
            last = ticks;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gpu_clock_rejects_zero_freq() {
        let _ = GpuClock::new(0.0, 0.0, 0);
    }
}
