//! Kernel descriptors and the execution-time variation model.
//!
//! A [`KernelDesc`] tells the device *how long* a kernel runs (as a function
//! of core frequency) and *how hard* it drives each GPU sub-component while
//! running. The descriptor is produced by the workload models in
//! `fingrav-workloads` (rocBLAS-like GEMM selection, RCCL-like collectives).
//!
//! The [`VariationConfig`] injects the paper's challenge **C3**: in the
//! sub-millisecond regime, "even slight variation in kernel execution time
//! (e.g., due to slight differences in memory allocation and hence access
//! patterns) makes correlating power measurements across runs a challenge."
//! We model three distinct sources, matching the paper's narrative:
//!
//! * **warm-up factors** — the first executions after the GPU has been idle
//!   run slower (cold caches and clock ramp); the paper found three warm-up
//!   executions typically suffice for time stabilization;
//! * **per-run allocation bias** — each run places buffers differently,
//!   shifting every execution in the run by a common factor;
//! * **per-execution jitter and outliers** — small Gaussian noise plus rare
//!   large excursions which the binning step (S3) must reject.

use serde::{Deserialize, Serialize};

use crate::power::Activity;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// A handle to a kernel registered with a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelHandle(pub(crate) usize);

impl KernelHandle {
    /// The raw registration index.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Rebuilds a handle from a raw registration index.
    ///
    /// Exists for trace persistence (decoding a serialized
    /// [`crate::trace::RunTrace`] back into memory); a rebuilt handle is
    /// only meaningful against the simulation that originally issued it.
    pub fn from_index(index: usize) -> Self {
        KernelHandle(index)
    }
}

impl Default for KernelHandle {
    /// The first registered kernel; convenient for doctests and examples.
    fn default() -> Self {
        KernelHandle(0)
    }
}

/// Static description of a GPU kernel as the simulator executes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable name, e.g. `"CB-4K-GEMM"`.
    pub name: String,
    /// Execution time at the reference (boost) frequency, fully warm.
    pub base_exec: SimDuration,
    /// Fraction of the runtime that does *not* scale with core frequency
    /// (memory-bound fraction); 0 = perfectly compute-bound, 1 = perfectly
    /// memory-bound.
    pub freq_insensitive_frac: f64,
    /// Per-component switching activity while the kernel runs.
    pub activity: Activity,
    /// Achieved fraction of peak compute throughput (metadata used by the
    /// power-proportionality analysis; does not affect simulation).
    pub compute_utilization: f64,
    /// Algorithmic floating-point operations per execution.
    pub flops: f64,
    /// Bytes moved to/from HBM per execution (after cache filtering).
    pub hbm_bytes: f64,
    /// Bytes served by the Infinity Cache (LLC) per execution.
    pub llc_bytes: f64,
    /// Number of workgroups the kernel launches (used by phase splitting).
    pub workgroups: u32,
}

impl KernelDesc {
    /// Validates invariants; returns an error string naming the violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("kernel name must not be empty".into());
        }
        if self.base_exec.is_zero() {
            return Err(format!("kernel {}: base_exec must be positive", self.name));
        }
        if !(0.0..=1.0).contains(&self.freq_insensitive_frac) {
            return Err(format!(
                "kernel {}: freq_insensitive_frac out of [0,1]",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.compute_utilization) {
            return Err(format!(
                "kernel {}: compute_utilization out of [0,1]",
                self.name
            ));
        }
        if self.flops < 0.0 || self.hbm_bytes < 0.0 || self.llc_bytes < 0.0 {
            return Err(format!("kernel {}: negative work quantities", self.name));
        }
        if self.workgroups == 0 {
            return Err(format!(
                "kernel {}: needs at least one workgroup",
                self.name
            ));
        }
        Ok(())
    }

    /// Execution-time multiplier at core frequency `f_mhz` relative to the
    /// reference frequency: the compute-bound fraction stretches as the
    /// clock drops, the memory-bound fraction does not.
    ///
    /// # Examples
    ///
    /// ```
    /// use fingrav_sim::kernel::KernelDesc;
    /// use fingrav_sim::power::Activity;
    /// use fingrav_sim::time::SimDuration;
    ///
    /// let k = KernelDesc {
    ///     name: "k".into(),
    ///     base_exec: SimDuration::from_micros(100),
    ///     freq_insensitive_frac: 0.0,
    ///     activity: Activity::IDLE,
    ///     compute_utilization: 0.5,
    ///     flops: 1.0,
    ///     hbm_bytes: 1.0,
    ///     llc_bytes: 1.0,
    ///     workgroups: 8,
    /// };
    /// // Fully compute bound: halving the clock doubles the time.
    /// assert!((k.duration_factor(1050.0, 2100.0) - 2.0).abs() < 1e-12);
    /// ```
    pub fn duration_factor(&self, f_mhz: f64, f_ref_mhz: f64) -> f64 {
        let f = f_mhz.max(1.0);
        self.freq_insensitive_frac + (1.0 - self.freq_insensitive_frac) * (f_ref_mhz / f)
    }

    /// Algorithmic operational intensity in flops per HBM byte.
    pub fn op_to_byte(&self) -> f64 {
        if self.hbm_bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.hbm_bytes
        }
    }
}

/// Sources of execution-time variation (paper challenge C3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Slow-down multipliers for the first executions after a cold (long
    /// idle) period; executions beyond the list run at 1.0.
    pub warmup_factors: Vec<f64>,
    /// Half-width of the uniform per-run allocation bias (fraction).
    pub run_bias_frac: f64,
    /// Standard deviation of per-execution Gaussian jitter (fraction).
    pub jitter_frac: f64,
    /// Probability that an execution is an outlier.
    pub outlier_prob: f64,
    /// Outlier slow-down range (multiplier drawn uniformly).
    pub outlier_range: (f64, f64),
    /// XCD-activity multiplier for outlier executions: a stall-heavy
    /// execution toggles the compute pipes less while it crawls.
    pub outlier_activity_factor: f64,
    /// Probability that a *whole run* lands a pathological memory
    /// allocation: every execution in it is slower and draws less compute
    /// power. These are the runs execution-time binning exists to discard.
    pub run_outlier_prob: f64,
    /// Slow-down range of a pathological run (multiplier drawn uniformly).
    pub run_outlier_bias: (f64, f64),
    /// XCD-activity multiplier of a pathological run.
    pub run_outlier_activity_factor: f64,
    /// Idle time after which the device is considered cold again and
    /// warm-up factors re-apply.
    pub cold_after: SimDuration,
}

impl Default for VariationConfig {
    fn default() -> Self {
        VariationConfig {
            warmup_factors: vec![1.22, 1.12, 1.05],
            run_bias_frac: 0.012,
            jitter_frac: 0.004,
            outlier_prob: 0.03,
            outlier_range: (1.10, 1.35),
            outlier_activity_factor: 0.80,
            run_outlier_prob: 0.08,
            run_outlier_bias: (1.04, 1.09),
            run_outlier_activity_factor: 0.88,
            cold_after: SimDuration::from_millis(5),
        }
    }
}

impl VariationConfig {
    /// A variation model with every stochastic source disabled; useful for
    /// deterministic tests.
    pub fn none() -> Self {
        VariationConfig {
            warmup_factors: Vec::new(),
            run_bias_frac: 0.0,
            jitter_frac: 0.0,
            outlier_prob: 0.0,
            outlier_range: (1.0, 1.0),
            outlier_activity_factor: 1.0,
            run_outlier_prob: 0.0,
            run_outlier_bias: (1.0, 1.0),
            run_outlier_activity_factor: 1.0,
            cold_after: SimDuration::from_millis(5),
        }
    }

    /// The warm-up multiplier for the `n`-th execution since cold.
    pub fn warmup_factor(&self, execs_since_cold: u32) -> f64 {
        self.warmup_factors
            .get(execs_since_cold as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Number of executions carrying a warm-up penalty.
    pub fn warmup_len(&self) -> u32 {
        self.warmup_factors.len() as u32
    }

    /// Samples the per-run allocation draw: `(time bias, activity factor)`.
    /// Most runs get a small uniform bias at full activity; with
    /// [`VariationConfig::run_outlier_prob`] the run is pathological — much
    /// slower and drawing less compute power.
    pub fn sample_run_bias(&self, rng: &mut SimRng) -> (f64, f64) {
        if rng.chance(self.run_outlier_prob) {
            (
                rng.uniform(self.run_outlier_bias.0, self.run_outlier_bias.1),
                self.run_outlier_activity_factor,
            )
        } else {
            (
                1.0 + rng.uniform(-self.run_bias_frac, self.run_bias_frac),
                1.0,
            )
        }
    }

    /// Samples the combined per-execution multiplier (jitter and possible
    /// outlier), excluding warm-up and run bias.
    pub fn sample_execution_noise(&self, rng: &mut SimRng) -> ExecutionNoise {
        let jitter = (1.0 + rng.normal(0.0, self.jitter_frac)).max(0.5);
        let outlier = if rng.chance(self.outlier_prob) {
            Some(rng.uniform(self.outlier_range.0, self.outlier_range.1))
        } else {
            None
        };
        ExecutionNoise { jitter, outlier }
    }
}

/// The stochastic multipliers drawn for one execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionNoise {
    /// Gaussian jitter multiplier (≈1.0).
    pub jitter: f64,
    /// Outlier multiplier, if this execution is an outlier.
    pub outlier: Option<f64>,
}

impl ExecutionNoise {
    /// The combined multiplier.
    pub fn factor(&self) -> f64 {
        self.jitter * self.outlier.unwrap_or(1.0)
    }

    /// True if this execution was drawn as an outlier.
    pub fn is_outlier(&self) -> bool {
        self.outlier.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "test".into(),
            base_exec: SimDuration::from_micros(200),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.8,
            flops: 1e11,
            hbm_bytes: 1e8,
            llc_bytes: 5e8,
            workgroups: 1024,
        }
    }

    #[test]
    fn valid_descriptor_passes() {
        assert!(desc().validate().is_ok());
    }

    #[test]
    fn invalid_descriptors_fail() {
        let mut d = desc();
        d.name.clear();
        assert!(d.validate().is_err());

        let mut d = desc();
        d.base_exec = SimDuration::ZERO;
        assert!(d.validate().is_err());

        let mut d = desc();
        d.freq_insensitive_frac = 1.5;
        assert!(d.validate().is_err());

        let mut d = desc();
        d.workgroups = 0;
        assert!(d.validate().is_err());

        let mut d = desc();
        d.flops = -1.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn duration_factor_at_reference_is_one() {
        let d = desc();
        assert!((d.duration_factor(2100.0, 2100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_ignores_frequency() {
        let mut d = desc();
        d.freq_insensitive_frac = 1.0;
        assert!((d.duration_factor(700.0, 2100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_bound_kernel_scales_inversely() {
        let mut d = desc();
        d.freq_insensitive_frac = 0.0;
        assert!((d.duration_factor(700.0, 2100.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn op_to_byte_infinite_without_memory_traffic() {
        let mut d = desc();
        d.hbm_bytes = 0.0;
        assert!(d.op_to_byte().is_infinite());
        assert!((desc().op_to_byte() - 1e3).abs() < 1e-9);
    }

    #[test]
    fn warmup_factors_decay_to_one() {
        let v = VariationConfig::default();
        assert!(v.warmup_factor(0) > v.warmup_factor(1));
        assert!(v.warmup_factor(1) > v.warmup_factor(2));
        assert_eq!(v.warmup_factor(3), 1.0);
        assert_eq!(v.warmup_factor(100), 1.0);
        assert_eq!(v.warmup_len(), 3);
    }

    #[test]
    fn disabled_variation_is_deterministic() {
        let v = VariationConfig::none();
        let mut rng = SimRng::from_streams(1, 1);
        assert_eq!(v.sample_run_bias(&mut rng), (1.0, 1.0));
        let n = v.sample_execution_noise(&mut rng);
        assert_eq!(n.factor(), 1.0);
        assert!(!n.is_outlier());
    }

    #[test]
    fn run_bias_within_bounds() {
        let v = VariationConfig::default();
        let mut rng = SimRng::from_streams(2, 2);
        let mut pathological = 0usize;
        for _ in 0..1000 {
            let (b, af) = v.sample_run_bias(&mut rng);
            if af < 1.0 {
                pathological += 1;
                assert!((v.run_outlier_bias.0..=v.run_outlier_bias.1).contains(&b));
                assert_eq!(af, v.run_outlier_activity_factor);
            } else {
                assert!((1.0 - v.run_bias_frac..=1.0 + v.run_bias_frac).contains(&b));
            }
        }
        // ~8% of runs should be pathological.
        assert!((40..160).contains(&pathological), "{pathological}");
    }

    #[test]
    fn outlier_rate_matches_config() {
        let v = VariationConfig::default();
        let mut rng = SimRng::from_streams(3, 3);
        let n = 20_000;
        let outliers = (0..n)
            .filter(|_| v.sample_execution_noise(&mut rng).is_outlier())
            .count();
        let rate = outliers as f64 / n as f64;
        assert!((rate - v.outlier_prob).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn outlier_factor_within_range() {
        let v = VariationConfig::default();
        let mut rng = SimRng::from_streams(4, 4);
        for _ in 0..5000 {
            let noise = v.sample_execution_noise(&mut rng);
            if let Some(o) = noise.outlier {
                assert!((v.outlier_range.0..=v.outlier_range.1).contains(&o));
            }
        }
    }
}
