//! A deterministic discrete-event queue.
//!
//! The simulator advances by popping the earliest pending event. Ties are
//! broken by insertion order (FIFO), which keeps runs bit-reproducible no
//! matter how the heap happens to reorganize internally.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: a payload scheduled at an instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use fingrav_sim::event::EventQueue;
/// use fingrav_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(5), "b");
        q.schedule(SimTime::from_nanos(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        q.schedule(SimTime::from_nanos(2), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn never_pops_backwards_under_load() {
        let mut q = EventQueue::new();
        // Pseudo-random but deterministic schedule.
        let mut x = 0x12345678_u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let at = SimTime::ZERO + SimDuration::from_nanos(x % 1_000_000);
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
