//! Deterministic discrete-event queues.
//!
//! The simulator advances by popping the earliest pending event. Ties are
//! broken by insertion order (FIFO), which keeps runs bit-reproducible no
//! matter how the heap happens to reorganize internally.
//!
//! Two queue types share that discipline:
//!
//! * [`EventQueue`] — the general heap: any number of events, O(log n)
//!   per operation.
//! * [`HybridQueue`] — the engine's hot-loop queue: a fixed set of
//!   *periodic slots* (one armed firing each, O(1) to arm and pop) merged
//!   against a small heap of irregular events. Both halves draw sequence
//!   numbers from one shared counter, so the merged pop order — including
//!   FIFO tie order — is exactly what a single [`EventQueue`] holding the
//!   same schedule would produce.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: a payload scheduled at an instant.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use fingrav_sim::event::EventQueue;
/// use fingrav_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// What a [`HybridQueue::pop`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped<E> {
    /// The periodic stream armed at this slot index fired.
    Periodic(usize),
    /// An irregular event scheduled through [`HybridQueue::schedule`].
    Irregular(E),
}

/// A two-tier event queue for loops dominated by a few periodic streams.
///
/// `N` slots each hold at most one armed firing of a periodic stream —
/// arming and popping a slot is O(1) array work, no heap traffic — while
/// irregular events go through an ordinary binary heap. A single sequence
/// counter spans both tiers, so interleaving [`HybridQueue::arm`] and
/// [`HybridQueue::schedule`] calls produces exactly the pop order (times,
/// then FIFO ties) of an [`EventQueue`] receiving the same `schedule`
/// calls in the same order.
///
/// # Examples
///
/// ```
/// use fingrav_sim::event::{HybridQueue, Popped};
/// use fingrav_sim::time::SimTime;
///
/// let mut q: HybridQueue<&str, 2> = HybridQueue::new();
/// q.arm(0, SimTime::from_nanos(20));
/// q.schedule(SimTime::from_nanos(10), "irregular");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), Popped::Irregular("irregular"))));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), Popped::Periodic(0))));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct HybridQueue<E, const N: usize> {
    /// One pending firing per periodic slot: `(time, seq)`.
    slots: [Option<(SimTime, u64)>; N],
    armed: usize,
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    high_water: usize,
}

impl<E, const N: usize> HybridQueue<E, N> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HybridQueue {
            slots: [None; N],
            armed: 0,
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }

    /// Arms periodic slot `slot` to fire at `at`, consuming the next
    /// sequence number exactly as a [`HybridQueue::schedule`] call would.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= N`. Debug-asserts the slot is not already armed
    /// (a periodic stream has at most one pending firing).
    pub fn arm(&mut self, slot: usize, at: SimTime) {
        debug_assert!(self.slots[slot].is_none(), "slot {slot} already armed");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots[slot] = Some((at, seq));
        self.armed += 1;
        self.high_water = self.high_water.max(self.len());
    }

    /// Schedules an irregular `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        self.high_water = self.high_water.max(self.len());
    }

    /// Removes and returns the earliest pending entry — minimal `(time,
    /// seq)` across both tiers — if any.
    pub fn pop(&mut self) -> Option<(SimTime, Popped<E>)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some((at, seq)) = *slot {
                if best.is_none_or(|(bt, bs, _)| (at, seq) < (bt, bs)) {
                    best = Some((at, seq, i));
                }
            }
        }
        match (best, self.heap.peek()) {
            (Some((at, seq, _)), Some(h)) if (h.at, h.seq) < (at, seq) => {
                let s = self.heap.pop().expect("peeked entry");
                Some((s.at, Popped::Irregular(s.payload)))
            }
            (Some((at, _, i)), _) => {
                self.slots[i] = None;
                self.armed -= 1;
                Some((at, Popped::Periodic(i)))
            }
            (None, Some(_)) => {
                let s = self.heap.pop().expect("peeked entry");
                Some((s.at, Popped::Irregular(s.payload)))
            }
            (None, None) => None,
        }
    }

    /// The time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        let slot_min = self.slots.iter().flatten().map(|&(at, _)| at).min();
        match (slot_min, self.heap.peek().map(|s| s.at)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending entries (armed slots plus heap events).
    pub fn len(&self) -> usize {
        self.armed + self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most entries ever pending at once since construction (survives
    /// [`HybridQueue::clear`], like the sequence counter).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drops every pending entry. The sequence counter keeps counting, so
    /// FIFO order stays well-defined across clears.
    pub fn clear(&mut self) {
        self.slots = [None; N];
        self.armed = 0;
        self.heap.clear();
    }
}

impl<E, const N: usize> Default for HybridQueue<E, N> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(5), "b");
        q.schedule(SimTime::from_nanos(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        q.schedule(SimTime::from_nanos(2), "d");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn hybrid_pops_slots_and_heap_in_time_order() {
        let mut q: HybridQueue<&str, 3> = HybridQueue::new();
        q.arm(1, SimTime::from_nanos(30));
        q.arm(0, SimTime::from_nanos(10));
        q.schedule(SimTime::from_nanos(20), "mid");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(10), Popped::Periodic(0)))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(20), Popped::Irregular("mid")))
        );
        assert_eq!(
            q.pop(),
            Some((SimTime::from_nanos(30), Popped::Periodic(1)))
        );
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn hybrid_ties_break_by_shared_sequence_counter() {
        // At the same instant, whoever was armed/scheduled first pops
        // first — across tiers, exactly like one EventQueue.
        let t = SimTime::from_nanos(100);
        let mut q: HybridQueue<u32, 2> = HybridQueue::new();
        q.arm(1, t); // seq 0
        q.schedule(t, 7); // seq 1
        q.arm(0, t); // seq 2
        q.schedule(t, 8); // seq 3
        assert_eq!(q.pop(), Some((t, Popped::Periodic(1))));
        assert_eq!(q.pop(), Some((t, Popped::Irregular(7))));
        assert_eq!(q.pop(), Some((t, Popped::Periodic(0))));
        assert_eq!(q.pop(), Some((t, Popped::Irregular(8))));
    }

    #[test]
    fn hybrid_clear_keeps_the_sequence_counter() {
        let t = SimTime::from_nanos(5);
        let mut q: HybridQueue<u32, 1> = HybridQueue::new();
        q.arm(0, t);
        q.schedule(t, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        // Post-clear arms keep drawing later sequence numbers: an event
        // scheduled before the clear in a reference queue would still win
        // the tie, which is what the engine's cross-script FIFO relies on.
        q.schedule(t, 2); // seq 2
        q.arm(0, t); // seq 3
        assert_eq!(q.pop(), Some((t, Popped::Irregular(2))));
        assert_eq!(q.pop(), Some((t, Popped::Periodic(0))));
    }

    #[test]
    fn hybrid_matches_the_heap_reference_on_a_random_schedule() {
        // Mirror every operation into an EventQueue; the merged pop
        // stream (time, kind) must be identical, including tie order.
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Kind {
            Slot(usize),
            Irregular(u64),
        }
        let mut hybrid: HybridQueue<u64, 4> = HybridQueue::new();
        let mut reference: EventQueue<Kind> = EventQueue::new();
        let mut x = 0xDEADBEEF_u64;
        let step =
            |hybrid: &mut HybridQueue<u64, 4>, reference: &mut EventQueue<Kind>, x: &mut u64| {
                *x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let at = SimTime::from_nanos(*x % 64); // dense times force ties
                *x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let slot = (*x % 8) as usize;
                if slot < 4 {
                    if hybrid.slots[slot].is_none() {
                        hybrid.arm(slot, at);
                        reference.schedule(at, Kind::Slot(slot));
                    }
                } else {
                    hybrid.schedule(at, *x);
                    reference.schedule(at, Kind::Irregular(*x));
                }
            };
        for round in 0..200 {
            for _ in 0..(round % 7) + 1 {
                step(&mut hybrid, &mut reference, &mut x);
            }
            // Drain a few, interleaved with scheduling.
            for _ in 0..(round % 5) {
                let got = hybrid.pop();
                let want = reference.pop();
                match (got, want) {
                    (None, None) => {}
                    (Some((gt, Popped::Periodic(s))), Some((wt, Kind::Slot(ws)))) => {
                        assert_eq!((gt, s), (wt, ws));
                    }
                    (Some((gt, Popped::Irregular(p))), Some((wt, Kind::Irregular(wp)))) => {
                        assert_eq!((gt, p), (wt, wp));
                    }
                    (g, w) => panic!("pop mismatch: {g:?} vs {w:?}"),
                }
            }
        }
        while let Some(want) = reference.pop() {
            let got = hybrid.pop().expect("hybrid drained early");
            assert_eq!(got.0, want.0);
        }
        assert!(hybrid.pop().is_none());
    }

    #[test]
    fn never_pops_backwards_under_load() {
        let mut q = EventQueue::new();
        // Pseudo-random but deterministic schedule.
        let mut x = 0x12345678_u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let at = SimTime::ZERO + SimDuration::from_nanos(x % 1_000_000);
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
