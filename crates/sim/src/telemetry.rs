//! Power telemetry: the instantaneous sensor and the averaging loggers.
//!
//! The paper's solution **S1** taps "a 1ms power logger available internally
//! at AMD on MI300X; each power sample is the average of multiple
//! instantaneous power readings in the last 1ms", and each log carries a
//! GPU timestamp (solution **S2**). [`AveragingPowerLogger`] reproduces that
//! contract exactly. The same type with a longer period/window models
//! external tools like `amd-smi` (challenge **C1**: tens-of-milliseconds
//! samplers miss sub-millisecond kernels entirely).
//!
//! The averaging behaviour is the root cause of the paper's power-variance
//! challenge (**C4**) and of the SSE/SSP profile split (**S4**): a short
//! kernel's power is blended with whatever idle time or other kernels share
//! its averaging window.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::power::ComponentPower;
use crate::time::{GpuTicks, SimDuration, SimTime};

/// One emitted power log: a GPU-timestamped windowed average.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLog {
    /// GPU timestamp-counter value at emission time.
    pub ticks: GpuTicks,
    /// Average component power over the trailing window, watts.
    pub avg: ComponentPower,
}

/// Telemetry cadence parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Instantaneous sensor sampling period.
    pub sensor_period: SimDuration,
    /// Emission period of the fine (internal) logger.
    pub logger_period: SimDuration,
    /// Averaging window of the fine logger.
    pub logger_window: SimDuration,
    /// Emission period of the coarse (`amd-smi`-like) logger.
    pub coarse_period: SimDuration,
    /// Averaging window of the coarse logger.
    pub coarse_window: SimDuration,
    /// If true, the full instantaneous power trace is recorded in the run
    /// trace (ground truth for tests; expensive for long experiments).
    pub record_instant_trace: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sensor_period: SimDuration::from_micros(20),
            logger_period: SimDuration::from_millis(1),
            logger_window: SimDuration::from_millis(1),
            coarse_period: SimDuration::from_millis(50),
            coarse_window: SimDuration::from_millis(50),
            record_instant_trace: false,
        }
    }
}

/// A windowed-averaging power logger.
///
/// Instantaneous samples are pushed continuously (the hardware sensor never
/// stops); logs are emitted on a fixed period *only while enabled*. Each
/// log averages every sample in the trailing window.
///
/// # Examples
///
/// ```
/// use fingrav_sim::telemetry::AveragingPowerLogger;
/// use fingrav_sim::power::ComponentPower;
/// use fingrav_sim::time::{GpuTicks, SimDuration, SimTime};
///
/// let mut logger = AveragingPowerLogger::new(SimDuration::from_millis(1));
/// logger.set_enabled(true);
/// for i in 0..50 {
///     let t = SimTime::from_micros(i * 20);
///     logger.push_sample(t, ComponentPower::new(100.0, 0.0, 0.0, 0.0));
/// }
/// logger.emit(SimTime::from_millis(1), GpuTicks::from_raw(100_000));
/// let logs = logger.drain_logs();
/// assert_eq!(logs.len(), 1);
/// assert!((logs[0].avg.xcd - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct AveragingPowerLogger {
    window: SimDuration,
    samples: VecDeque<(SimTime, ComponentPower)>,
    logs: Vec<PowerLog>,
    enabled: bool,
}

impl AveragingPowerLogger {
    /// Creates a disabled logger with the given averaging window.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "averaging window must be positive");
        AveragingPowerLogger {
            window,
            samples: VecDeque::new(),
            logs: Vec::new(),
            enabled: false,
        }
    }

    /// The averaging window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Whether log emission is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables log emission (sampling continues regardless).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an instantaneous sample at `t`, pruning samples that have
    /// aged out of the window.
    pub fn push_sample(&mut self, t: SimTime, power: ComponentPower) {
        debug_assert!(
            self.samples.back().is_none_or(|&(last, _)| last <= t),
            "samples must arrive in time order"
        );
        self.samples.push_back((t, power));
        let cutoff = t.saturating_sub(self.window);
        while let Some(&(front, _)) = self.samples.front() {
            if front < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Emits a log at `t` (if enabled): the average of all samples in
    /// `(t - window, t]`, stamped with `ticks`. Returns the emitted log so
    /// streaming sessions can forward it the moment it exists (`None` when
    /// disabled or when no sample fell in the window).
    pub fn emit(&mut self, t: SimTime, ticks: GpuTicks) -> Option<PowerLog> {
        if !self.enabled {
            return None;
        }
        let cutoff = t.saturating_sub(self.window);
        let mut sum = ComponentPower::ZERO;
        let mut n = 0u32;
        for &(st, p) in &self.samples {
            if st > cutoff && st <= t {
                sum += p;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let log = PowerLog {
            ticks,
            avg: sum / n as f64,
        };
        self.logs.push(log);
        Some(log)
    }

    /// Takes all logs emitted since the last drain.
    pub fn drain_logs(&mut self) -> Vec<PowerLog> {
        std::mem::take(&mut self.logs)
    }

    /// Number of undrained logs — the authoritative pending count. Use
    /// this (never a throwaway [`AveragingPowerLogger::drain_logs`]) to
    /// observe how many logs have accumulated: draining is destructive and
    /// streaming consumers rely on every drain being intentional.
    pub fn pending_logs(&self) -> usize {
        self.logs.len()
    }

    /// Number of retained instantaneous samples (bounded by window/period).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(x: f64) -> ComponentPower {
        ComponentPower::new(x, 0.0, 0.0, 0.0)
    }

    fn logger_1ms() -> AveragingPowerLogger {
        let mut l = AveragingPowerLogger::new(SimDuration::from_millis(1));
        l.set_enabled(true);
        l
    }

    #[test]
    fn constant_input_averages_to_itself() {
        let mut l = logger_1ms();
        for i in 0..=50 {
            l.push_sample(SimTime::from_micros(i * 20), w(250.0));
        }
        let emitted = l.emit(SimTime::from_millis(1), GpuTicks::from_raw(1));
        assert_eq!(l.pending_logs(), 1);
        let logs = l.drain_logs();
        assert_eq!(emitted, Some(logs[0]));
        assert!((logs[0].avg.xcd - 250.0).abs() < 1e-9);
        assert_eq!(logs[0].ticks, GpuTicks::from_raw(1));
    }

    #[test]
    fn window_blends_idle_and_busy() {
        // 30% of the window at 1000 W, 70% at 100 W -> ~370 W average.
        // This is exactly the paper's short-kernel blending effect.
        let mut l = logger_1ms();
        for i in 0..50 {
            let t = SimTime::from_micros(i * 20);
            let p = if i >= 35 { w(1000.0) } else { w(100.0) };
            l.push_sample(t, p);
        }
        l.emit(SimTime::from_micros(999), GpuTicks::from_raw(0));
        let avg = l.drain_logs()[0].avg.xcd;
        assert!((avg - 370.0).abs() < 30.0, "avg {avg}");
    }

    #[test]
    fn disabled_logger_emits_nothing() {
        let mut l = AveragingPowerLogger::new(SimDuration::from_millis(1));
        l.push_sample(SimTime::ZERO, w(10.0));
        assert_eq!(l.emit(SimTime::from_millis(1), GpuTicks::from_raw(0)), None);
        assert_eq!(l.pending_logs(), 0);
    }

    #[test]
    fn samples_age_out_of_window() {
        let mut l = logger_1ms();
        // Fill with high power, then a full window of low power.
        for i in 0..50 {
            l.push_sample(SimTime::from_micros(i * 20), w(1000.0));
        }
        for i in 50..100 {
            l.push_sample(SimTime::from_micros(i * 20), w(100.0));
        }
        l.emit(SimTime::from_micros(99 * 20), GpuTicks::from_raw(0));
        let avg = l.drain_logs()[0].avg.xcd;
        assert!(
            (avg - 100.0).abs() < 25.0,
            "old samples must have aged out, avg {avg}"
        );
        // Retained samples bounded.
        assert!(l.sample_count() <= 52);
    }

    #[test]
    fn emit_without_samples_is_skipped() {
        let mut l = logger_1ms();
        assert_eq!(l.emit(SimTime::from_millis(5), GpuTicks::from_raw(0)), None);
        assert_eq!(l.pending_logs(), 0);
    }

    #[test]
    fn drain_clears_logs() {
        let mut l = logger_1ms();
        l.push_sample(SimTime::from_nanos(1), w(10.0));
        assert!(l
            .emit(SimTime::from_nanos(1), GpuTicks::from_raw(0))
            .is_some());
        assert_eq!(l.pending_logs(), 1);
        assert_eq!(l.drain_logs().len(), 1);
        assert_eq!(l.pending_logs(), 0);
        assert!(l.drain_logs().is_empty());
    }

    #[test]
    fn multiple_components_average_independently() {
        let mut l = logger_1ms();
        l.push_sample(
            SimTime::from_micros(10),
            ComponentPower::new(10.0, 20.0, 30.0, 40.0),
        );
        l.push_sample(
            SimTime::from_micros(20),
            ComponentPower::new(30.0, 40.0, 50.0, 60.0),
        );
        l.emit(SimTime::from_micros(30), GpuTicks::from_raw(0));
        let avg = l.drain_logs()[0].avg;
        assert!((avg.xcd - 20.0).abs() < 1e-9);
        assert!((avg.iod - 30.0).abs() < 1e-9);
        assert!((avg.hbm - 40.0).abs() < 1e-9);
        assert!((avg.rest - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = AveragingPowerLogger::new(SimDuration::ZERO);
    }
}
