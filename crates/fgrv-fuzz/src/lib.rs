//! Coverage-guided fuzzing and differential conformance harness for the
//! FGRV* decoders (`FGRVPROF`, `FGRVCKPT`, `FGRVWIRE`).
//!
//! The harness is dependency-free by design (the `fgrv-lint` precedent:
//! first-party crates only): SplitMix64 randomness, hand-rolled
//! AFL-style coverage buckets over the `fingrav_core::cover` site table,
//! deterministic structure-aware mutators, and a counting global
//! allocator backing the allocation-cap oracle. See `docs/FUZZING.md`
//! for the operator's guide.
//!
//! ## Determinism
//!
//! An iteration-budgeted run is a pure function of `(target, seed,
//! corpus)` — including across worker-thread counts. Mutant generation
//! and corpus retention are single-threaded around a parallel,
//! side-effect-free execution stage, so 1, 2, and 8 threads produce the
//! same mutation schedule, the same findings, and the same final corpus
//! digest (pinned by `tests/fuzz_regression.rs`). Wall-clock-budgeted
//! runs (`--seconds`) trade that for convenience: the round count then
//! depends on machine speed.

#![warn(missing_docs)]

pub mod alloc;
pub mod corpus;
pub mod exec;
pub mod mutate;
pub mod rng;
pub mod targets;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use corpus::{fnv1a, fnv1a_fold, Corpus};
use exec::{run_one, ExecResult, Finding};
use mutate::mutate;
use rng::Rng;
use targets::Target;

/// Inputs generated per round. One round = one generate → execute →
/// retain cycle; the batch is the parallelism grain.
pub const BATCH: usize = 256;

/// Iteration budget used when the caller sets neither `--iters` nor
/// `--seconds`.
pub const DEFAULT_ITERS: u64 = 4096;

/// Ceiling on executions spent minimizing one finding.
const MINIMIZE_BUDGET: usize = 384;

/// Distinct findings minimized and written out per run; later duplicates
/// of the same kind+detail are folded into their exemplar's count.
const REPORTED_FINDINGS_CAP: usize = 16;

/// One fuzzing campaign's parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// The decode path under fuzz.
    pub target: Target,
    /// Master RNG seed; the whole schedule derives from it.
    pub seed: u64,
    /// Worker threads for the execution stage (min 1).
    pub threads: usize,
    /// Input budget. Checked between rounds, so a run executes at most
    /// `iters + BATCH - 1` inputs.
    pub iters: Option<u64>,
    /// Wall-clock budget in seconds, checked between rounds. Overrides
    /// nothing — whichever budget runs out first stops the run.
    pub seconds: Option<u64>,
    /// On-disk corpus: extra seeds loaded from here (sorted by file
    /// name), retained entries and crash artifacts written back.
    pub corpus_dir: Option<PathBuf>,
}

impl FuzzConfig {
    /// A single-threaded, default-budget config for `target`.
    pub fn new(target: Target) -> FuzzConfig {
        FuzzConfig {
            target,
            seed: 1,
            threads: 1,
            iters: None,
            seconds: None,
            corpus_dir: None,
        }
    }
}

/// One minimized oracle violation.
#[derive(Debug, Clone)]
pub struct ReportedFinding {
    /// What went wrong.
    pub finding: Finding,
    /// The minimized input that still reproduces it.
    pub input: Vec<u8>,
    /// How many raw inputs produced this same kind+detail.
    pub occurrences: u64,
}

/// The outcome of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total inputs executed (seed replay included).
    pub executed: u64,
    /// Minimized findings, in discovery order.
    pub findings: Vec<ReportedFinding>,
    /// Coverage buckets after replaying only the seeds/corpus.
    pub baseline_buckets: usize,
    /// Coverage buckets at the end of the run.
    pub final_buckets: usize,
    /// Retained corpus entries at the end of the run.
    pub corpus_len: usize,
    /// Order-sensitive digest of the final corpus.
    pub corpus_digest: u64,
    /// Digest of the full mutation schedule (every generated input, in
    /// generation order).
    pub schedule_digest: u64,
}

/// Loads extra seed inputs from `dir` (top-level `.bin` files, sorted by
/// name so the replay order — and hence the schedule — is stable).
fn load_corpus_dir(dir: &Path) -> io::Result<Vec<Vec<u8>>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "bin"))
        .collect();
    paths.sort();
    paths.into_iter().map(fs::read).collect()
}

/// Executes `batch` across `threads` workers, returning results in batch
/// order. Execution is pure (thread-local coverage, thread-local peak),
/// so the split is purely a wall-clock optimisation.
fn execute_batch(target: Target, batch: &[Vec<u8>], threads: usize) -> Vec<ExecResult> {
    if threads <= 1 || batch.len() <= 1 {
        return batch.iter().map(|input| run_one(target, input)).collect();
    }
    let chunk = batch.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || slice.iter().map(|i| run_one(target, i)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fuzz worker panicked outside catch_unwind"))
            .collect()
    })
}

/// True when `result` reproduces the same failure kind (and, for
/// divergences/panics, the same message) as `finding`.
fn same_failure(result: &ExecResult, finding: &Finding) -> bool {
    match (&result.finding, finding) {
        (Some(Finding::Panic(a)), Finding::Panic(b)) => a == b,
        (Some(Finding::Divergence(a)), Finding::Divergence(b)) => a == b,
        (Some(Finding::AllocCap { .. }), Finding::AllocCap { .. }) => true,
        _ => false,
    }
}

/// ddmin-lite: removes progressively smaller chunks while the failure
/// still reproduces, bounded by [`MINIMIZE_BUDGET`] executions.
fn minimize(target: Target, input: &[u8], finding: &Finding) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut spent = 0usize;
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && spent < MINIMIZE_BUDGET && !best.is_empty() {
        let mut at = 0;
        let mut shrunk = false;
        while at < best.len() && spent < MINIMIZE_BUDGET {
            let end = (at + chunk).min(best.len());
            let mut candidate = best.clone();
            candidate.drain(at..end);
            spent += 1;
            if same_failure(&run_one(target, &candidate), finding) {
                best = candidate;
                shrunk = true;
                // Keep `at`: the bytes now at `at` were never tried.
            } else {
                at = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

/// Key for folding duplicate findings: kind plus message hash.
fn finding_key(finding: &Finding) -> (u8, u64) {
    match finding {
        Finding::Panic(msg) => (0, fnv1a(msg.as_bytes())),
        Finding::Divergence(msg) => (1, fnv1a(msg.as_bytes())),
        Finding::AllocCap { .. } => (2, 0),
    }
}

/// Runs one fuzzing campaign to its budget.
///
/// # Errors
///
/// Only corpus-directory I/O can fail; the fuzzing loop itself reports
/// findings instead of erroring.
pub fn run(config: &FuzzConfig) -> io::Result<RunReport> {
    let started = Instant::now();
    let target = config.target;
    let threads = config.threads.max(1);

    // ---- Seed replay (single-threaded, order = schedule prefix) ----
    let mut seeds = targets::seeds(target);
    if let Some(dir) = &config.corpus_dir {
        seeds.extend(load_corpus_dir(dir)?);
    }
    let mut corpus = Corpus::new();
    let mut executed = 0u64;
    let mut raw_findings: Vec<(Finding, Vec<u8>)> = Vec::new();
    for seed in &seeds {
        let result = run_one(target, seed);
        executed += 1;
        if let Some(finding) = result.finding.clone() {
            raw_findings.push((finding, seed.clone()));
        }
        // Seeds are retained unconditionally: in an uninstrumented build
        // a valid seed produces neither branch counters nor taxonomy, and
        // dropping it would leave mutation nothing structured to work on.
        corpus.map.observe(&result.snapshot, &result.taxonomy);
        corpus.entries.push(seed.clone());
    }
    let baseline_buckets = corpus.map.buckets();

    // ---- Mutation rounds ----
    let iter_budget = match (config.iters, config.seconds) {
        (None, None) => Some(DEFAULT_ITERS),
        (iters, _) => iters,
    };
    let mut rng = Rng::new(config.seed);
    let mut schedule_digest: u64 = 0xcbf2_9ce4_8422_2325;
    loop {
        if let Some(budget) = iter_budget {
            if executed >= budget {
                break;
            }
        }
        if let Some(seconds) = config.seconds {
            if started.elapsed().as_secs() >= seconds {
                break;
            }
        }

        // Generate single-threaded from the master RNG: the schedule is
        // independent of how execution is parallelised below.
        let mut batch = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            let base = &corpus.entries[rng.below(corpus.entries.len())];
            let other = if rng.one_in(2) {
                Some(corpus.entries[rng.below(corpus.entries.len())].clone())
            } else {
                None
            };
            let mutant = mutate(&mut rng, base, other.as_deref());
            schedule_digest = fnv1a_fold(schedule_digest, &mutant);
            batch.push(mutant);
        }

        let results = execute_batch(target, &batch, threads);
        executed += batch.len() as u64;

        // Retain single-threaded, in batch order: thread-count invariant.
        for (input, result) in batch.into_iter().zip(results) {
            if let Some(finding) = result.finding.clone() {
                raw_findings.push((finding, input.clone()));
            }
            if corpus.map.observe(&result.snapshot, &result.taxonomy) {
                corpus.entries.push(input);
            }
        }
    }

    // ---- Minimize and fold findings ----
    let mut findings: Vec<ReportedFinding> = Vec::new();
    let mut keys: Vec<(u8, u64)> = Vec::new();
    for (finding, input) in raw_findings {
        let key = finding_key(&finding);
        if let Some(pos) = keys.iter().position(|k| *k == key) {
            findings[pos].occurrences += 1;
            continue;
        }
        if findings.len() >= REPORTED_FINDINGS_CAP {
            continue;
        }
        let input = minimize(target, &input, &finding);
        keys.push(key);
        findings.push(ReportedFinding {
            finding,
            input,
            occurrences: 1,
        });
    }

    // ---- Persist corpus + crash artifacts ----
    if let Some(dir) = &config.corpus_dir {
        fs::create_dir_all(dir)?;
        for entry in &corpus.entries {
            fs::write(dir.join(format!("{:016x}.bin", fnv1a(entry))), entry)?;
        }
        if !findings.is_empty() {
            let crashes = dir.join("crashes");
            fs::create_dir_all(&crashes)?;
            for found in &findings {
                let stem = format!("{}-{:016x}", found.finding.kind(), fnv1a(&found.input));
                fs::write(crashes.join(format!("{stem}.bin")), &found.input)?;
                fs::write(
                    crashes.join(format!("{stem}.txt")),
                    format!("{:?}\n", found.finding),
                )?;
            }
        }
    }

    Ok(RunReport {
        executed,
        findings,
        baseline_buckets,
        final_buckets: corpus.map.buckets(),
        corpus_len: corpus.entries.len(),
        corpus_digest: corpus.digest(),
        schedule_digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(target: Target, threads: usize) -> FuzzConfig {
        FuzzConfig {
            target,
            seed: 7,
            threads,
            iters: Some(2 * BATCH as u64),
            seconds: None,
            corpus_dir: None,
        }
    }

    #[test]
    fn short_run_is_clean_and_deterministic_across_threads() {
        let one = run(&tiny_config(Target::Prof, 1)).expect("no corpus I/O");
        assert!(one.findings.is_empty(), "{:?}", one.findings);
        assert!(one.executed >= 2 * BATCH as u64);
        for threads in [2, 8] {
            let many = run(&tiny_config(Target::Prof, threads)).expect("no corpus I/O");
            assert_eq!(one.schedule_digest, many.schedule_digest);
            assert_eq!(one.corpus_digest, many.corpus_digest);
            assert_eq!(one.executed, many.executed);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = run(&tiny_config(Target::Wire, 1)).expect("no corpus I/O");
        let mut config = tiny_config(Target::Wire, 1);
        config.seed = 8;
        let b = run(&config).expect("no corpus I/O");
        assert_ne!(a.schedule_digest, b.schedule_digest);
    }

    #[test]
    fn minimizer_shrinks_while_preserving_the_failure() {
        // Synthetic finding: a divergence oracle we can steer is not
        // available, so exercise `minimize` through `same_failure` on a
        // taxonomy-only target — a bad-magic prof input minimizes toward
        // the empty input while still failing the same way.
        let finding = Finding::Divergence("never reproduces".to_string());
        let input = vec![0u8; 64];
        // Nothing reproduces a fake divergence, so the minimizer must
        // return the input unchanged (never "minimize" into a different
        // failure).
        assert_eq!(minimize(Target::Prof, &input, &finding), input);
    }
}
