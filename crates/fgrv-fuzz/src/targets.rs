//! The fuzz targets: one per untrusted-input decode path, each pairing a
//! decoder with its differential conformance oracle.
//!
//! Every target's `execute` upholds the same contract on EVERY input:
//!
//! * it never panics (panics are caught one level up, in the executor);
//! * rejected inputs yield a typed error, hashed into the run's
//!   error-taxonomy coverage;
//! * where an owned and a zero-copy decoder exist for the same bytes
//!   (`FGRVPROF` store vs [`ProfileStoreView`], [`EntryArtifact`] vs
//!   [`EntryArtifactView`], plain vs budgeted wire reads), both must
//!   agree — same accepted value, or typed errors with identical `Debug`
//!   renderings (the `tests/store_view.rs` comparison idiom);
//! * accepted inputs re-encode and re-decode to an equal value.
//!
//! Any violation comes back as `Err(description)` — a divergence the
//! harness records, minimizes, and writes out as a crash artifact.

use std::io::{self, Read};
use std::time::Duration;

use fingrav_core::checkpoint::{
    CampaignManifest, EntryArtifact, EntryArtifactView, StageCheckpoint,
};
use fingrav_core::store::{ProfileStore, ProfileStoreView};
use fingrav_core::transport::{read_next_frame, read_preamble, write_preamble, Frame};
use fingrav_core::{ProfilePoint, ProfilingEvent, StageKind};
use fingrav_sim::power::ComponentPower;

use crate::corpus::taxonomy_hash;

/// One decode path under fuzz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// `FGRVPROF`: [`ProfileStore::from_bytes`] vs
    /// [`ProfileStoreView::new`] / [`ProfileStoreView::split_prefix`].
    Prof,
    /// `FGRVCKPT` manifest section: [`CampaignManifest::from_bytes`].
    CkptManifest,
    /// `FGRVCKPT` entry section: [`EntryArtifact::from_bytes`] vs
    /// [`EntryArtifactView::parse`].
    CkptEntry,
    /// `FGRVCKPT` stage section: [`StageCheckpoint::from_bytes`].
    CkptStage,
    /// `FGRVWIRE` v2 stream: [`Frame::read_from`] loop vs the budgeted
    /// [`read_next_frame`] path over a stalling reader.
    Wire,
}

/// A row of the shipped target table (also what `docs/FUZZING.md` pins).
#[derive(Debug, Clone, Copy)]
pub struct TargetInfo {
    /// CLI name (`fgrv-fuzz run <name>`).
    pub name: &'static str,
    /// The decode path.
    pub target: Target,
    /// One-line description for `fgrv-fuzz list` and the docs table.
    pub description: &'static str,
}

/// Every shipped fuzz target. `docs/FUZZING.md`'s table mirrors this
/// row for row (pinned by `tests/docs_spec.rs`).
pub const TARGETS: [TargetInfo; 5] = [
    TargetInfo {
        name: "prof",
        target: Target::Prof,
        description: "FGRVPROF store: owned decode vs zero-copy view, round trip, split_prefix",
    },
    TargetInfo {
        name: "ckpt-manifest",
        target: Target::CkptManifest,
        description: "FGRVCKPT manifest section: decode + re-encode round trip",
    },
    TargetInfo {
        name: "ckpt-entry",
        target: Target::CkptEntry,
        description: "FGRVCKPT entry section: owned decode vs zero-copy view, round trip",
    },
    TargetInfo {
        name: "ckpt-stage",
        target: Target::CkptStage,
        description: "FGRVCKPT stage section: decode + re-encode round trip",
    },
    TargetInfo {
        name: "wire",
        target: Target::Wire,
        description: "FGRVWIRE v2 stream: plain frame loop vs budgeted heartbeat-skipping reader",
    },
];

/// Looks a target up by CLI name.
pub fn find(name: &str) -> Option<Target> {
    TARGETS
        .iter()
        .find(|info| info.name == name)
        .map(|info| info.target)
}

// ---------------------------------------------------------------------
// Seeds
// ---------------------------------------------------------------------

/// A small valid store exercising every column (validity gaps included).
fn seed_store(n: usize, salt: u32) -> ProfileStore {
    let mut store = ProfileStore::with_capacity(n);
    for i in 0..n {
        let i32u = i as u32;
        let valid = !(i + salt as usize).is_multiple_of(3);
        let v = f64::from(i32u) * 1.5 + f64::from(salt);
        store.push(ProfilePoint {
            run: i32u % 4,
            exec_pos: valid.then_some(i32u),
            toi_ns: valid.then_some(v.abs()),
            run_time_ns: v,
            power: ComponentPower::new(v * 0.5, v * 0.25, v * 0.15, v * 0.1),
        });
    }
    store
}

/// A short valid wire stream: preamble plus `frames`, heartbeats where
/// asked.
fn seed_stream(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    write_preamble(&mut out).expect("vec write");
    for frame in frames {
        frame.write_to(&mut out).expect("vec write");
    }
    out
}

/// The built-in seed corpus for `target`: a handful of valid encodings
/// (so mutation starts past the magic check) plus the empty input.
pub fn seeds(target: Target) -> Vec<Vec<u8>> {
    let mut seeds: Vec<Vec<u8>> = match target {
        Target::Prof => vec![
            seed_store(0, 0).to_bytes(),
            seed_store(3, 1).to_bytes(),
            seed_store(17, 2).to_bytes(),
            seed_store(64, 3).to_bytes(),
        ],
        Target::CkptManifest => {
            vec![include_bytes!("../../../tests/data/golden_manifest.fgrvckpt").to_vec()]
        }
        Target::CkptEntry => {
            vec![include_bytes!("../../../tests/data/golden_entry.fgrvckpt").to_vec()]
        }
        Target::CkptStage => {
            vec![include_bytes!("../../../tests/data/golden_stage.fgrvckpt").to_vec()]
        }
        Target::Wire => {
            let artifact = include_bytes!("../../../tests/data/golden_entry.fgrvckpt").to_vec();
            vec![
                seed_stream(&[]),
                // Every tag once, heartbeats interleaved so the budgeted
                // path's skip loop is on the hot path from round zero.
                seed_stream(&[
                    Frame::Hello {
                        digest: 0x0123_4567_89ab_cdef,
                        sequence: 0,
                    },
                    Frame::Heartbeat,
                    Frame::Welcome {
                        shard: 2,
                        entries: 9,
                    },
                    Frame::Deny {
                        code: 1,
                        detail: "digest mismatch".to_string(),
                    },
                    Frame::Request,
                    Frame::Assign { index: 4 },
                    Frame::Heartbeat,
                    Frame::Finished { complete: true },
                    Frame::Abort,
                    Frame::Started {
                        index: 4,
                        label: "CB-4K-GEMM".to_string(),
                    },
                    Frame::Event {
                        index: 4,
                        event: ProfilingEvent::StageStarted {
                            stage: StageKind::Calibrate,
                        },
                    },
                    Frame::Done {
                        index: 4,
                        artifact: artifact.clone(),
                    },
                    Frame::Failed {
                        index: 5,
                        error: fingrav_core::MethodologyError::Aborted,
                    },
                    Frame::Fetch { index: 4 },
                    Frame::Artifact { artifact },
                    Frame::Bye,
                    Frame::Heartbeat,
                ]),
            ]
        }
    };
    seeds.push(Vec::new());
    seeds
}

// ---------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------

/// Outcome of one oracle-checked execution: the error-taxonomy hashes
/// the input produced (empty when it decoded cleanly).
pub type Taxonomy = Vec<u64>;

/// Runs `input` through `target`'s decoder(s) and differential oracle.
///
/// # Errors
///
/// An `Err` is an oracle violation — an owned/view divergence or a
/// broken re-encode round trip — described well enough to triage from
/// the crash artifact alone. Panics are NOT caught here; the executor
/// wraps this call in `catch_unwind`.
pub fn execute(target: Target, input: &[u8]) -> Result<Taxonomy, String> {
    match target {
        Target::Prof => run_prof(input),
        Target::CkptManifest => run_manifest(input),
        Target::CkptEntry => run_entry(input),
        Target::CkptStage => run_stage(input),
        Target::Wire => run_wire(input),
    }
}

fn hash_err<E: std::fmt::Debug>(e: &E) -> u64 {
    taxonomy_hash(&format!("{e:?}"))
}

fn run_prof(input: &[u8]) -> Result<Taxonomy, String> {
    let owned = ProfileStore::from_bytes(input);
    let view = ProfileStoreView::new(input);
    match (owned, view) {
        (Ok(store), Ok(view)) => {
            // `diff_view` bit-compares float columns, so a decoded NaN
            // equals itself — `PartialEq` would false-alarm here.
            let diff = store.diff_view(&view);
            if !diff.is_identical() {
                return Err(format!(
                    "owned decode != view on accepted input: {}",
                    diff.mismatch_brief()
                ));
            }
            // Accepted inputs re-encode and re-decode to the same value.
            // Value, not bytes: the header flags word is ignored on
            // decode and re-encoded as zero.
            let bytes = store.to_bytes();
            match ProfileStore::from_bytes(&bytes) {
                Ok(again) if store.diff(&again).is_identical() => {}
                Ok(again) => {
                    return Err(format!(
                        "FGRVPROF re-decode drifted: {}",
                        store.diff(&again).mismatch_brief()
                    ))
                }
                Err(e) => return Err(format!("FGRVPROF re-encode failed to decode: {e:?}")),
            }
            // split_prefix must hand back exactly the trailing junk.
            let mut framed = bytes;
            framed.extend_from_slice(&[0xA5; 4]);
            match ProfileStoreView::split_prefix(&framed) {
                Ok((prefix, rest)) if rest == [0xA5; 4] => {
                    if !store.diff_view(&prefix).is_identical() {
                        return Err("split_prefix prefix decoded differently".to_string());
                    }
                }
                Ok((_, rest)) => {
                    return Err(format!(
                        "split_prefix returned {} trailing bytes, wanted 4",
                        rest.len()
                    ))
                }
                Err(e) => return Err(format!("split_prefix rejected a valid prefix: {e:?}")),
            }
            Ok(Vec::new())
        }
        (Err(a), Err(b)) => {
            let (da, db) = (format!("{a:?}"), format!("{b:?}"));
            if da != db {
                return Err(format!("owned/view error divergence: owned={da} view={db}"));
            }
            Ok(vec![taxonomy_hash(&da)])
        }
        (Ok(_), Err(e)) => Err(format!("owned accepted what the view rejected: {e:?}")),
        (Err(e), Ok(_)) => Err(format!("view accepted what owned rejected: {e:?}")),
    }
}

/// Decode + round-trip oracle shared by the manifest and stage sections
/// (single-decoder targets). Value equality is checked through the
/// canonical encoding — bit-exact, so decoded NaN payloads equal
/// themselves where derived `PartialEq` would not.
fn run_roundtrip<T, E>(
    input: &[u8],
    what: &str,
    decode: impl Fn(&[u8]) -> Result<T, E>,
    encode: impl Fn(&T) -> Vec<u8>,
) -> Result<Taxonomy, String>
where
    E: std::fmt::Debug,
{
    match decode(input) {
        Ok(value) => {
            let bytes = encode(&value);
            match decode(&bytes) {
                Ok(again) if encode(&again) == bytes => Ok(Vec::new()),
                Ok(_) => Err(format!("{what} re-decode drifted from the original")),
                Err(e) => Err(format!("{what} re-encode failed to decode: {e:?}")),
            }
        }
        Err(e) => Ok(vec![hash_err(&e)]),
    }
}

fn run_manifest(input: &[u8]) -> Result<Taxonomy, String> {
    run_roundtrip(
        input,
        "FGRVCKPT manifest",
        CampaignManifest::from_bytes,
        CampaignManifest::to_bytes,
    )
}

fn run_stage(input: &[u8]) -> Result<Taxonomy, String> {
    run_roundtrip(
        input,
        "FGRVCKPT stage",
        StageCheckpoint::from_bytes,
        StageCheckpoint::to_bytes,
    )
}

fn run_entry(input: &[u8]) -> Result<Taxonomy, String> {
    let owned = EntryArtifact::from_bytes(input);
    let view = EntryArtifactView::parse(input);
    match (owned, view) {
        (Ok(artifact), Ok(view)) => {
            // Compare through the canonical encoding (bit-exact, NaN-safe
            // — derived `PartialEq` would false-alarm on accepted NaN
            // float fields).
            let bytes = artifact.to_bytes();
            if view.to_artifact().to_bytes() != bytes {
                return Err("owned decode != view.to_artifact() on accepted input".to_string());
            }
            match EntryArtifact::from_bytes(&bytes) {
                Ok(again) if again.to_bytes() == bytes => Ok(Vec::new()),
                Ok(_) => Err("FGRVCKPT entry re-decode drifted from the original".to_string()),
                Err(e) => Err(format!("FGRVCKPT entry re-encode failed to decode: {e:?}")),
            }
        }
        (Err(a), Err(b)) => {
            let (da, db) = (format!("{a:?}"), format!("{b:?}"));
            if da != db {
                return Err(format!("owned/view error divergence: owned={da} view={db}"));
            }
            Ok(vec![taxonomy_hash(&da)])
        }
        (Ok(_), Err(e)) => Err(format!("owned accepted what the view rejected: {e:?}")),
        (Err(e), Ok(_)) => Err(format!("view accepted what owned rejected: {e:?}")),
    }
}

// ---------------------------------------------------------------------
// Wire: plain vs budgeted differential
// ---------------------------------------------------------------------

/// A reader that drips `data` a few bytes at a time and injects a
/// `WouldBlock` every third call — the shape of a live socket with a
/// read timeout. Deterministic, so both fuzz passes over the same input
/// see the same byte schedule.
struct Chop<'a> {
    data: &'a [u8],
    at: usize,
    calls: usize,
}

impl Read for Chop<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.calls += 1;
        if self.calls.is_multiple_of(3) {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "chop tick"));
        }
        let take = buf.len().min(3).min(self.data.len() - self.at);
        buf[..take].copy_from_slice(&self.data[self.at..self.at + take]);
        self.at += take;
        Ok(take)
    }
}

/// The budgeted pass's idle allowance. Huge, so a deterministic
/// in-memory run can never race the wall clock into a spurious
/// `DeadlineLapsed` — the `WouldBlock` ticks still drive the deadline
/// accounting code, they just never accumulate enough silence.
const FUZZ_IDLE: Duration = Duration::from_secs(3600);

fn run_wire(input: &[u8]) -> Result<Taxonomy, String> {
    // Pass A: preamble + plain frame loop, straight off the slice.
    let mut cursor = input;
    if let Err(e) = read_preamble(&mut cursor) {
        // Both passes share `read_preamble`'s validation byte for byte;
        // a bad preamble is one taxonomy bucket, no differential to run.
        return Ok(vec![hash_err(&e)]);
    }
    let body = cursor;
    let mut plain_frames = Vec::new();
    let mut r = body;
    let plain_terminal;
    loop {
        match Frame::read_from(&mut r) {
            Ok(Frame::Heartbeat) => {}
            Ok(frame) => plain_frames.push(frame),
            Err(e) => {
                plain_terminal = format!("{e:?}");
                break;
            }
        }
    }

    // Pass B: budgeted reads over a stalling, dripping reader. The
    // heartbeat skip lives inside `read_next_frame`, so filtering
    // happened for us.
    let mut chop = Chop {
        data: body,
        at: 0,
        calls: 0,
    };
    let mut budgeted_frames = Vec::new();
    let budgeted_terminal;
    loop {
        match read_next_frame(&mut chop, FUZZ_IDLE) {
            Ok(frame) => budgeted_frames.push(frame),
            Err(e) => {
                budgeted_terminal = format!("{e:?}");
                break;
            }
        }
    }

    // Compare the two passes through the canonical encoding: bit-exact,
    // so frames carrying decoded NaN telemetry equal themselves (derived
    // `PartialEq` on f64 fields would false-alarm).
    let encode = |frame: &Frame| -> Result<Vec<u8>, String> {
        let mut bytes = Vec::new();
        frame
            .write_to(&mut bytes)
            .map_err(|e| format!("accepted frame refused to re-encode: {e}"))?;
        Ok(bytes)
    };
    let plain_encoded: Vec<Vec<u8>> = plain_frames.iter().map(encode).collect::<Result<_, _>>()?;
    let budgeted_encoded: Vec<Vec<u8>> = budgeted_frames
        .iter()
        .map(encode)
        .collect::<Result<_, _>>()?;
    if plain_encoded != budgeted_encoded {
        return Err(format!(
            "wire divergence: plain path decoded {} frames, budgeted {}",
            plain_frames.len(),
            budgeted_frames.len()
        ));
    }
    if plain_terminal != budgeted_terminal {
        return Err(format!(
            "wire terminal-error divergence: plain={plain_terminal} budgeted={budgeted_terminal}"
        ));
    }

    // Accepted frames re-read from their re-encoding to the same bytes.
    for bytes in &plain_encoded {
        let mut r = bytes.as_slice();
        match Frame::read_from(&mut r) {
            Ok(again) => {
                if encode(&again)? != *bytes {
                    return Err("frame re-decode drifted from the original".to_string());
                }
            }
            Err(e) => return Err(format!("frame re-encode failed to decode: {e:?}")),
        }
    }

    // The terminal error is the input's taxonomy. A stream that ends
    // cleanly terminates with `Truncated("frame tag")`, so every clean
    // stream collapses into that one shared bucket.
    Ok(vec![taxonomy_hash(&plain_terminal)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_passes_its_own_oracle() {
        for info in TARGETS {
            for (i, seed) in seeds(info.target).iter().enumerate() {
                if let Err(why) = execute(info.target, seed) {
                    panic!("target {} seed {i}: {why}", info.name);
                }
            }
        }
    }

    #[test]
    fn target_names_are_unique_and_resolvable() {
        for info in TARGETS {
            assert_eq!(find(info.name), Some(info.target));
        }
        assert_eq!(find("nope"), None);
    }

    #[test]
    fn wire_oracle_flags_nothing_on_mutated_golden() {
        // A flipped byte inside the stream must not diverge the two read
        // paths — it must produce the same typed error in both.
        let mut stream = seeds(Target::Wire).remove(1);
        for at in 0..stream.len().min(64) {
            stream[at] ^= 0x40;
            let _ = execute(Target::Wire, &stream);
            stream[at] ^= 0x40;
        }
    }
}
