//! Coverage accounting and corpus retention.
//!
//! Coverage has two ingredients, merged into one novelty test:
//!
//! * **Branch buckets** — the `fingrav_core::cover` per-site hit
//!   counters, bucketed AFL-style into log₂ count classes (1, 2, 3,
//!   4–7, 8–15, …), so "took this branch 9 times" is novel over "took
//!   it once" but 9 vs 10 is not. All-zero without the `cover` feature.
//! * **Error-taxonomy buckets** — FNV hashes of the typed-error Debug
//!   renderings an input produced. These work in every build and give
//!   the mutation loop feedback even on uninstrumented decoders.
//!
//! An input is retained iff it lights a (site, class) pair or a
//! taxonomy hash the corpus has not seen. Retention runs
//! single-threaded in batch order, which is what makes the final corpus
//! digest independent of the worker-thread count.

use std::collections::BTreeSet;

use fingrav_core::cover;

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Folds `word` into an FNV-1a accumulator (little-endian bytes).
pub fn fnv1a_add(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hashes an error's `Debug` rendering into a taxonomy bucket, with
/// every run of ASCII digits collapsed to one `#`. Error messages embed
/// the offending values (`implausible length 12345`), and hashing those
/// verbatim would mint a "novel" bucket per mutated length — unbounded
/// corpus growth with no new behavior. Collapsing digits keeps distinct
/// error *shapes* distinct and nothing else.
pub fn taxonomy_hash(rendered: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut in_digits = false;
    for &b in rendered.as_bytes() {
        let digit = b.is_ascii_digit();
        if digit && in_digits {
            continue;
        }
        in_digits = digit;
        h ^= u64::from(if digit { b'#' } else { b });
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Folds a length-framed byte string into an FNV-1a accumulator, so
/// `[1,2]+[3]` and `[1]+[2,3]` fold differently.
pub fn fnv1a_fold(h: u64, bytes: &[u8]) -> u64 {
    let mut h = fnv1a_add(h, bytes.len() as u64);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Log₂ count class of one hit counter: 0 for zero hits, else
/// `1 + min(7, floor(log2(count)))`, giving classes for 1, 2, 3, 4–7,
/// 8–15, … ≥64 hits.
fn class_of(count: u32) -> u8 {
    if count == 0 {
        0
    } else {
        1 + (31 - count.leading_zeros()).min(6) as u8
    }
}

/// The coverage state of a corpus: which (site, count-class) pairs and
/// which error-taxonomy hashes have been observed so far.
#[derive(Debug, Default, Clone)]
pub struct CoverageMap {
    /// Bit `c` of `classes[site]` set ⇔ class `c` seen at `site`.
    classes: Vec<u8>,
    /// Ordered so iteration (and hence any derived digest) is
    /// deterministic.
    taxonomy: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map sized for the instrumentation site table.
    pub fn new() -> CoverageMap {
        CoverageMap {
            classes: vec![0; cover::SITE_COUNT],
            taxonomy: BTreeSet::new(),
        }
    }

    /// Merges one execution's observations (a counter snapshot plus the
    /// taxonomy hashes of its typed errors); returns true when anything
    /// was new.
    pub fn observe(&mut self, snapshot: &[u32; cover::SITE_COUNT], taxonomy: &[u64]) -> bool {
        let mut novel = false;
        for (site, &count) in snapshot.iter().enumerate() {
            let class = class_of(count);
            if class == 0 {
                continue;
            }
            let bit = 1u8 << (class - 1);
            if self.classes[site] & bit == 0 {
                self.classes[site] |= bit;
                novel = true;
            }
        }
        for &h in taxonomy {
            novel |= self.taxonomy.insert(h);
        }
        novel
    }

    /// Total distinct buckets seen: (site, class) pairs plus taxonomy
    /// hashes.
    pub fn buckets(&self) -> usize {
        self.classes
            .iter()
            .map(|&bits| bits.count_ones() as usize)
            .sum::<usize>()
            + self.taxonomy.len()
    }
}

/// The retained input set plus its coverage map.
#[derive(Debug, Default, Clone)]
pub struct Corpus {
    /// Retained inputs, in retention order (seeds first).
    pub entries: Vec<Vec<u8>>,
    /// Coverage accumulated over every retained input.
    pub map: CoverageMap,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus {
            entries: Vec::new(),
            map: CoverageMap::new(),
        }
    }

    /// Order-sensitive digest of the retained inputs: equal corpora in
    /// equal order digest equal, which is what the determinism suite
    /// pins across thread counts.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for entry in &self.entries {
            h = fnv1a_fold(h, entry);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_classes_bucket_log2() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 1);
        assert_eq!(class_of(2), 2);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(4), 3);
        assert_eq!(class_of(7), 3);
        assert_eq!(class_of(8), 4);
        assert_eq!(class_of(64), 7);
        assert_eq!(class_of(u32::MAX), 7);
    }

    #[test]
    fn novelty_latches() {
        let mut map = CoverageMap::new();
        let mut snap = [0u32; cover::SITE_COUNT];
        snap[0] = 1;
        assert!(map.observe(&snap, &[]));
        assert!(!map.observe(&snap, &[]));
        snap[0] = 9; // new count class at the same site
        assert!(map.observe(&snap, &[]));
        assert!(map.observe(&[0; cover::SITE_COUNT], &[42]));
        assert!(!map.observe(&[0; cover::SITE_COUNT], &[42]));
        assert_eq!(map.buckets(), 3);
    }

    #[test]
    fn corpus_digest_is_order_sensitive() {
        let mut a = Corpus::new();
        a.entries.push(vec![1, 2]);
        a.entries.push(vec![3]);
        let mut b = Corpus::new();
        b.entries.push(vec![3]);
        b.entries.push(vec![1, 2]);
        assert_ne!(a.digest(), b.digest());
        // And framing matters: [1,2]+[3] must not equal [1]+[2,3].
        let mut c = Corpus::new();
        c.entries.push(vec![1]);
        c.entries.push(vec![2, 3]);
        assert_ne!(a.digest(), c.digest());
    }
}
