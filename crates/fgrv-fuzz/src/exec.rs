//! One oracle-checked execution: coverage capture, panic containment,
//! and the allocation-cap check.

use std::panic::{self, AssertUnwindSafe};

use fingrav_core::cover;

use crate::alloc;
use crate::targets::{self, Target};

/// Baseline allowance for the allocation-cap oracle, plus a
/// per-input-byte factor. Generous against the documented decode caps
/// (`PREALLOC_ELEMS`-chunked sequences, 4 KiB wire read chunks): a
/// decoder that honours them sits far below this line even on adversarial
/// length fields, while an unbounded `Vec::with_capacity(attacker_len)`
/// blows straight through it.
pub const ALLOC_CAP_BASE: usize = 64 << 20;
/// Accepted inputs legitimately materialise owned copies (columns,
/// artifacts, re-encoded buffers) proportional to their size, across
/// several simultaneous decoders.
pub const ALLOC_CAP_PER_BYTE: usize = 64;

/// What one input did wrong. `None` of these occur on a healthy target.
#[derive(Debug, Clone)]
pub enum Finding {
    /// The decoder panicked. Payload: the panic message.
    Panic(String),
    /// An oracle violation (owned/view divergence, broken round trip).
    Divergence(String),
    /// Peak live allocation exceeded the documented-cap allowance.
    AllocCap {
        /// Observed peak live bytes during the execution.
        peak: usize,
        /// The allowance it exceeded.
        cap: usize,
    },
}

impl Finding {
    /// Short kind tag for file names and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Finding::Panic(_) => "panic",
            Finding::Divergence(_) => "divergence",
            Finding::AllocCap { .. } => "alloc-cap",
        }
    }
}

/// The observations from one execution.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Per-site branch counters (all zero without `--features cover`).
    pub snapshot: [u32; cover::SITE_COUNT],
    /// Error-taxonomy hashes the input produced.
    pub taxonomy: Vec<u64>,
    /// The violation, if any.
    pub finding: Option<Finding>,
}

/// Runs `input` through `target` under full observation.
pub fn run_one(target: Target, input: &[u8]) -> ExecResult {
    cover::reset();
    alloc::reset_peak();
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| targets::execute(target, input)));
    let snapshot = cover::snapshot();
    let peak = alloc::peak();

    let (taxonomy, mut finding) = match outcome {
        Ok(Ok(taxonomy)) => (taxonomy, None),
        Ok(Err(why)) => (Vec::new(), Some(Finding::Divergence(why))),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (Vec::new(), Some(Finding::Panic(msg)))
        }
    };

    // The cap check needs the counting allocator actually installed
    // (harness binary); library embeddings see peak 0 and skip it.
    if finding.is_none() && alloc::active() {
        let cap = ALLOC_CAP_BASE.saturating_add(ALLOC_CAP_PER_BYTE.saturating_mul(input.len()));
        if peak > cap {
            finding = Some(Finding::AllocCap { peak, cap });
        }
    }

    ExecResult {
        snapshot,
        taxonomy,
        finding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_input_yields_taxonomy_not_findings() {
        let result = run_one(Target::Prof, b"definitely not a store");
        assert!(result.finding.is_none());
        assert!(!result.taxonomy.is_empty());
    }

    #[test]
    fn valid_seed_yields_no_finding_and_no_taxonomy() {
        for info in targets::TARGETS {
            for seed in targets::seeds(info.target) {
                let result = run_one(info.target, &seed);
                assert!(
                    result.finding.is_none(),
                    "{}: {:?}",
                    info.name,
                    result.finding
                );
            }
        }
    }
}
