//! `fgrv-fuzz` — coverage-guided fuzzing and differential conformance
//! harness for the FGRV* decoders.
//!
//! ```text
//! fgrv-fuzz list
//! fgrv-fuzz run <target> [--iters N | --seconds N] [--corpus DIR]
//!                        [--seed S] [--threads T]
//! fgrv-fuzz replay <target> <file>...
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage error. See
//! `docs/FUZZING.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use fgrv_fuzz::exec::run_one;
use fgrv_fuzz::targets::{self, Target, TARGETS};
use fgrv_fuzz::{run, FuzzConfig};

/// The allocation-cap oracle only measures in binaries that install the
/// counting allocator; the harness is the binary that does.
#[global_allocator]
static ALLOC: fgrv_fuzz::alloc::CountingAlloc = fgrv_fuzz::alloc::CountingAlloc;

const USAGE: &str = "usage:
  fgrv-fuzz list
  fgrv-fuzz run <target> [--iters N | --seconds N] [--corpus DIR] [--seed S] [--threads T]
  fgrv-fuzz replay <target> <file>...

targets: run `fgrv-fuzz list`";

fn usage(why: &str) -> ExitCode {
    eprintln!("fgrv-fuzz: {why}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_target(name: &str) -> Result<Target, String> {
    targets::find(name).ok_or_else(|| format!("unknown target {name:?} (try `fgrv-fuzz list`)"))
}

fn cmd_list() -> ExitCode {
    for info in TARGETS {
        println!("{:<13} {}", info.name, info.description);
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage("run: missing <target>");
    };
    let target = match parse_target(name) {
        Ok(t) => t,
        Err(why) => return usage(&why),
    };
    let mut config = FuzzConfig::new(target);
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let Some(value) = rest.next() else {
            return usage(&format!("{flag} needs a value"));
        };
        let parsed: Result<(), String> = match flag.as_str() {
            "--iters" => value
                .parse()
                .map(|n| config.iters = Some(n))
                .map_err(|e| format!("--iters: {e}")),
            "--seconds" => value
                .parse()
                .map(|n| config.seconds = Some(n))
                .map_err(|e| format!("--seconds: {e}")),
            "--seed" => value
                .parse()
                .map(|n| config.seed = n)
                .map_err(|e| format!("--seed: {e}")),
            "--threads" => value
                .parse()
                .map(|n| config.threads = n)
                .map_err(|e| format!("--threads: {e}")),
            "--corpus" => {
                config.corpus_dir = Some(PathBuf::from(value));
                Ok(())
            }
            other => Err(format!("unknown flag {other:?}")),
        };
        if let Err(why) = parsed {
            return usage(&why);
        }
    }

    let report = match run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fgrv-fuzz: corpus I/O failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "target {name}: {} inputs, coverage {} -> {} buckets, corpus {} entries \
         (digest {:016x}), schedule digest {:016x}",
        report.executed,
        report.baseline_buckets,
        report.final_buckets,
        report.corpus_len,
        report.corpus_digest,
        report.schedule_digest,
    );
    if report.findings.is_empty() {
        println!("no findings");
        return ExitCode::SUCCESS;
    }
    for found in &report.findings {
        println!(
            "FINDING [{}] x{}: {:?} (minimized to {} bytes)",
            found.finding.kind(),
            found.occurrences,
            found.finding,
            found.input.len(),
        );
    }
    ExitCode::from(1)
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage("replay: missing <target>");
    };
    let target = match parse_target(name) {
        Ok(t) => t,
        Err(why) => return usage(&why),
    };
    if args.len() < 2 {
        return usage("replay: missing <file>...");
    }
    let mut findings = 0u32;
    for path in &args[1..] {
        let input = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("fgrv-fuzz: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let result = run_one(target, &input);
        match result.finding {
            Some(finding) => {
                findings += 1;
                println!("{path}: FINDING [{}] {finding:?}", finding.kind());
            }
            None => println!("{path}: clean ({} taxonomy buckets)", result.taxonomy.len()),
        }
    }
    if findings == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some(other) => usage(&format!("unknown command {other:?}")),
        None => usage("missing command"),
    }
}
