//! A counting global allocator backing the oracle's allocation cap.
//!
//! The conformance oracle asserts that no input can drive a decoder's
//! transient memory commitment past the documented caps (the
//! `PREALLOC_ELEMS`-chunked sequence reads, `MAX_STR_LEN`,
//! `MAX_FRAME_LEN`-bounded payloads — see `docs/FORMATS.md`). Measuring
//! that takes a real allocator hook: [`CountingAlloc`] wraps
//! [`std::alloc::System`] and tracks a per-thread live-byte count and
//! peak.
//!
//! The harness binaries install it with `#[global_allocator]`; library
//! consumers that embed the oracle without installing it (the root
//! crate's corpus-replay tests) simply see a peak of zero, and the
//! oracle skips the cap check there — detection is via [`active`],
//! flipped on the first allocation the hook observes. Counters are
//! per-thread, matching the executor model: each fuzz thread decodes
//! its inputs locally, so cross-thread frees are noise this tracker
//! deliberately saturates away.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set once the hook sees its first allocation: proof the binary really
/// installed [`CountingAlloc`]. Relaxed is enough — this is a latch
/// read long after it was set, with no data published through it.
static ACTIVE: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// (live bytes, peak live bytes) on this thread.
    static LIVE: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

/// True when [`CountingAlloc`] is installed as the global allocator in
/// this binary (i.e. the hook has observed at least one allocation).
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Resets this thread's live/peak counters to the current live count.
pub fn reset_peak() {
    LIVE.with(|c| {
        let (live, _) = c.get();
        c.set((live, live));
    });
}

/// This thread's peak live-byte count since the last [`reset_peak`].
pub fn peak() -> usize {
    LIVE.with(|c| c.get().1)
}

fn add(n: usize) {
    ACTIVE.store(true, Ordering::Relaxed);
    LIVE.with(|c| {
        let (live, peak) = c.get();
        let live = live.saturating_add(n);
        c.set((live, peak.max(live)));
    });
}

fn sub(n: usize) {
    LIVE.with(|c| {
        let (live, peak) = c.get();
        // Saturating: memory freed on a different thread than it was
        // allocated on would otherwise underflow the local counter.
        c.set((live.saturating_sub(n), peak));
    });
}

/// System-allocator wrapper that maintains the per-thread counters.
pub struct CountingAlloc;

// SAFETY: every method delegates verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter updates around the delegation
// touch only a thread-local `Cell` and a relaxed atomic flag, neither
// of which allocates or panics, so the allocator is re-entrancy-safe.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        add(layout.size());
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        sub(layout.size());
        // SAFETY: `ptr` was allocated by `System` with `layout` (we
        // forward every allocation to it unmodified).
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        sub(layout.size());
        add(new_size);
        // SAFETY: `ptr`/`layout` come from `System` via our `alloc`;
        // `new_size` obeys the caller's `GlobalAlloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        add(layout.size());
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }
}
