//! Deterministic splice/havoc/structure-aware mutators.
//!
//! Every mutation draws from the caller's [`Rng`], so the schedule is a
//! pure function of (seed, corpus) — the property the determinism suite
//! pins. The structure-aware moves know the FGRV* container grammar:
//! the three 8-byte magics, the version word at offset 8, the
//! `FGRVCKPT` section tag at offset 12, and little-endian length fields
//! — so mutants concentrate on the validation branches instead of dying
//! at the magic check.

use crate::rng::Rng;

/// The three container magics (`FGRVPROF`, `FGRVCKPT`, `FGRVWIRE`).
pub const MAGICS: [[u8; 8]; 3] = [*b"FGRVPROF", *b"FGRVCKPT", *b"FGRVWIRE"];

/// Values worth planting in integer fields: bucket boundaries of every
/// documented cap plus the usual two's-complement edge cases.
const INTERESTING: [u64; 18] = [
    0,
    1,
    2,
    3,
    63,
    64,
    65,
    255,
    256,
    1 << 20, // MAX_STR_LEN
    (1 << 20) + 1,
    1 << 30, // MAX_FRAME_LEN
    (1 << 30) + 1,
    u32::MAX as u64 - 1, // MAX_SEQ_LEN boundary
    u32::MAX as u64,
    u32::MAX as u64 + 1,
    u64::MAX - 1,
    u64::MAX,
];

/// Ceiling on mutant size: big enough for multi-frame streams and
/// multi-profile entries, small enough that a runaway insert loop
/// cannot balloon the corpus.
pub const INPUT_LEN_CAP: usize = 1 << 20;

/// Produces one mutant of `base`, optionally splicing with `other`
/// (another corpus entry). Applies a stack of 1–8 randomly chosen
/// operations.
pub fn mutate(rng: &mut Rng, base: &[u8], other: Option<&[u8]>) -> Vec<u8> {
    let mut out = base.to_vec();
    let rounds = 1 + rng.below(8);
    for _ in 0..rounds {
        apply_one(rng, &mut out, other);
    }
    out.truncate(INPUT_LEN_CAP);
    out
}

fn apply_one(rng: &mut Rng, out: &mut Vec<u8>, other: Option<&[u8]>) {
    match rng.below(13) {
        // Bit flip.
        0 => {
            if !out.is_empty() {
                let at = rng.below(out.len());
                out[at] ^= 1 << rng.below(8);
            }
        }
        // Byte overwrite.
        1 => {
            if !out.is_empty() {
                let at = rng.below(out.len());
                out[at] = rng.byte();
            }
        }
        // Insert a short run of random bytes.
        2 => {
            let at = rng.below(out.len() + 1);
            let n = 1 + rng.below(8);
            for i in 0..n {
                out.insert((at + i).min(out.len()), rng.byte());
            }
        }
        // Delete a short range.
        3 => {
            if !out.is_empty() {
                let at = rng.below(out.len());
                let n = (1 + rng.below(8)).min(out.len() - at);
                out.drain(at..at + n);
            }
        }
        // Truncate.
        4 => {
            if !out.is_empty() {
                out.truncate(rng.below(out.len()));
            }
        }
        // Plant an interesting u32.
        5 => {
            if out.len() >= 4 {
                let at = rng.below(out.len() - 3);
                let v = INTERESTING[rng.below(INTERESTING.len())] as u32;
                out[at..at + 4].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Plant an interesting u64 (length-field sabotage).
        6 => {
            if out.len() >= 8 {
                let at = rng.below(out.len() - 7);
                let v = INTERESTING[rng.below(INTERESTING.len())];
                out[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Swap in one of the three container magics at offset 0.
        7 => {
            let magic = MAGICS[rng.below(MAGICS.len())];
            if out.len() < 8 {
                out.resize(8, 0);
            }
            out[..8].copy_from_slice(&magic);
        }
        // Version-field sabotage (u32 at offset 8 in every container).
        8 => {
            if out.len() >= 12 {
                let v: u32 = [0, 1, 2, 3, u32::MAX][rng.below(5)];
                out[8..12].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Section/flags-field sabotage (u32 at offset 12: the FGRVCKPT
        // section tag, the FGRVPROF flags word, the wire reserved word).
        9 => {
            if out.len() >= 16 {
                let v: u32 = [0, 1, 2, 3, 4, u32::MAX][rng.below(6)];
                out[12..16].copy_from_slice(&v.to_le_bytes());
            }
        }
        // Nudge a plausible length field: find a u64 whose value is at
        // most the input length (so it is probably a length/count) and
        // push it just past a boundary.
        10 => {
            if out.len() >= 8 {
                let at = rng.below(out.len() - 7);
                let mut word = [0u8; 8];
                word.copy_from_slice(&out[at..at + 8]);
                let v = u64::from_le_bytes(word);
                if v as usize <= out.len() {
                    let nudged = match rng.below(4) {
                        0 => v.wrapping_add(1),
                        1 => v.wrapping_sub(1),
                        2 => v.wrapping_mul(2),
                        _ => v.wrapping_add(out.len() as u64),
                    };
                    out[at..at + 8].copy_from_slice(&nudged.to_le_bytes());
                }
            }
        }
        // Splice: our prefix, the other entry's suffix.
        11 => {
            if let Some(other) = other {
                if !out.is_empty() && !other.is_empty() {
                    let cut_a = rng.below(out.len());
                    let cut_b = rng.below(other.len());
                    out.truncate(cut_a);
                    out.extend_from_slice(&other[cut_b..]);
                }
            }
        }
        // Append junk (trailing-bytes detectors).
        _ => {
            let n = 1 + rng.below(8);
            for _ in 0..n {
                out.push(rng.byte());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic() {
        let base = b"FGRVPROF\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let other = vec![0xA5; 32];
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut rng = Rng::new(seed);
            (0..32)
                .map(|_| mutate(&mut rng, &base, Some(&other)))
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn mutants_respect_the_size_ceiling() {
        let base = vec![0u8; INPUT_LEN_CAP];
        let mut rng = Rng::new(1);
        for _ in 0..64 {
            assert!(mutate(&mut rng, &base, None).len() <= INPUT_LEN_CAP);
        }
    }
}
