//! Deterministic pseudo-randomness for the mutation engine.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast,
//! well-mixed 64-bit generator whose entire state is one word, so a
//! fuzzing schedule is reproducible from a single printed seed. The
//! harness must not depend on the vendored `rand` shim (it fuzzes the
//! code under test and nothing else), and cryptographic quality is
//! irrelevant here — only determinism and reasonable dispersion are.

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator. Any seed is valid, including zero.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n` must be non-zero). Modulo bias
    /// is irrelevant for mutation scheduling.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) has no value to return");
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// One pseudo-random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_dispersed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        // All eight outputs distinct — the stream is not degenerate.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(7);
        for n in 1..64 {
            for _ in 0..16 {
                assert!(rng.below(n) < n);
            }
        }
    }
}
