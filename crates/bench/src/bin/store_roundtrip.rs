//! Persisted-profile-store smoke: profiles one suite kernel, writes its
//! stitched stores in the versioned binary format (plus the CSV view),
//! re-reads them, and asserts the round trip is bit-identical — the
//! checkpoint-integrity guarantee distributed campaigns rely on.
//!
//! Every store is re-read three ways — owned `from_bytes`, borrowed
//! `ProfileStoreView`, and an mmapped file — and all three must agree
//! bit for bit; the decode (and encode) throughput of each path is
//! reported in MB/s. The CSV artifact is additionally emitted through
//! the zero-copy view and checked byte-identical to the owned render.
//!
//! Usage: `store_roundtrip [--quick|--full|--bench] [--out DIR]`.
//! Artifacts land in the output directory (default `results/`):
//! `ssp_profile.fgrv`, `run_profile.fgrv`, `ssp_profile.csv`.

use std::fs;
use std::time::{Duration, Instant};

use fingrav_bench::harness::{profile_kernel, Scale};
use fingrav_bench::render::out_dir;
use fingrav_core::mmap::MappedProfile;
use fingrav_core::profile::ProfileAxis;
use fingrav_core::report::{profile_to_csv, view_to_csv};
use fingrav_core::store::{ProfileStore, ProfileStoreView};
use fingrav_sim::config::SimConfig;
use fingrav_workloads::suite;

/// Times `f` until at least ~50 ms have accumulated (minimum 10 reps)
/// and returns the mean per-rep duration.
fn time_reps<R>(mut f: impl FnMut() -> R) -> Duration {
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        std::hint::black_box(f());
        reps += 1;
        let elapsed = start.elapsed();
        if reps >= 10 && elapsed >= Duration::from_millis(50) {
            return elapsed / reps;
        }
    }
}

/// Bytes-per-wall-clock rate in MB/s (MiB, to be precise).
fn mb_per_s(bytes: usize, per_rep: Duration) -> f64 {
    bytes as f64 / (1u64 << 20) as f64 / per_rep.as_secs_f64()
}

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let dir = out_dir(std::env::args().skip(1)).expect("output directory");

    let machine = SimConfig::default().machine.clone();
    let kernel = suite::cb_gemm(&machine, 4096);
    let report = profile_kernel("store-roundtrip", &kernel, scale.runs(200));

    let mut failures = 0;
    for (name, profile) in [
        ("run_profile", &report.run_profile),
        ("ssp_profile", &report.ssp_profile),
    ] {
        let bytes = profile.store.to_bytes();
        let path = dir.join(format!("{name}.fgrv"));
        fs::write(&path, &bytes).expect("store artifact writes");

        let reread = fs::read(&path).expect("store artifact reads back");
        let restored = ProfileStore::from_bytes(&reread).expect("store artifact decodes");
        let diff = profile.store.diff(&restored);
        let reencoded = restored.to_bytes();

        // The zero-copy paths must see exactly the same store: a view
        // over the re-read buffer and a view over the mmapped file.
        let view = ProfileStoreView::new(&reread).expect("view decodes");
        let mapped = MappedProfile::open(&path).expect("store artifact maps");
        let mapped_view = mapped.view().expect("mapped view decodes");
        let views_identical = profile.store.diff_view(&view).is_identical()
            && profile.store.diff_view(&mapped_view).is_identical()
            && view.to_store() == restored;

        let identical = diff.is_identical() && reencoded == bytes && views_identical;
        println!(
            "{name}: {} points, {} bytes -> {}",
            profile.len(),
            bytes.len(),
            if identical {
                "bit-identical round trip (owned, view, mmap)".to_string()
            } else {
                failures += 1;
                format!("ROUND TRIP DIVERGED\n{}", diff.summary())
            }
        );

        let encode = time_reps(|| profile.store.to_bytes().len());
        let owned = time_reps(|| ProfileStore::from_bytes(&reread).expect("decodes").len());
        let viewed = time_reps(|| ProfileStoreView::new(&reread).expect("decodes").len());
        let mmapped = time_reps(|| mapped.view().expect("decodes").len());
        println!(
            "{name} throughput: encode {:.0} MB/s | decode owned {:.0} MB/s, \
             view {:.0} MB/s ({:.1}x), mmap {:.0} MB/s ({:.1}x)",
            mb_per_s(bytes.len(), encode),
            mb_per_s(bytes.len(), owned),
            mb_per_s(bytes.len(), viewed),
            owned.as_secs_f64() / viewed.as_secs_f64(),
            mb_per_s(bytes.len(), mmapped),
            owned.as_secs_f64() / mmapped.as_secs_f64(),
        );
    }

    // The CSV renders through the zero-copy view; the owned render must
    // produce the identical bytes (they share one formatting kernel).
    let owned_csv = profile_to_csv(&report.ssp_profile, ProfileAxis::Toi);
    let ssp_bytes = report.ssp_profile.store.to_bytes();
    let ssp_view = ProfileStoreView::new(&ssp_bytes).expect("ssp view decodes");
    let view_csv = view_to_csv(&ssp_view, ProfileAxis::Toi);
    if owned_csv != view_csv {
        eprintln!("view CSV diverged from the owned CSV render");
        failures += 1;
    }
    let csv_path = dir.join("ssp_profile.csv");
    fs::write(&csv_path, view_csv).expect("csv artifact writes");
    println!(
        "csv: {} ({} LOIs, view render == owned render)",
        csv_path.display(),
        report.ssp_profile.len()
    );

    if failures > 0 {
        eprintln!("{failures} store artifact(s) failed the bit-identity check");
        std::process::exit(1);
    }
}
