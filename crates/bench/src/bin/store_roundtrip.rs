//! Persisted-profile-store smoke: profiles one suite kernel, writes its
//! stitched stores in the versioned binary format (plus the CSV view),
//! re-reads them, and asserts the round trip is bit-identical — the
//! checkpoint-integrity guarantee distributed campaigns will rely on.
//!
//! Usage: `store_roundtrip [--quick|--full|--bench] [--out DIR]`.
//! Artifacts land in the output directory (default `results/`):
//! `ssp_profile.fgrv`, `run_profile.fgrv`, `ssp_profile.csv`.

use std::fs;

use fingrav_bench::harness::{profile_kernel, Scale};
use fingrav_bench::render::out_dir;
use fingrav_core::profile::ProfileAxis;
use fingrav_core::report::profile_to_csv;
use fingrav_core::store::ProfileStore;
use fingrav_sim::config::SimConfig;
use fingrav_workloads::suite;

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let dir = out_dir(std::env::args().skip(1)).expect("output directory");

    let machine = SimConfig::default().machine.clone();
    let kernel = suite::cb_gemm(&machine, 4096);
    let report = profile_kernel("store-roundtrip", &kernel, scale.runs(200));

    let mut failures = 0;
    for (name, profile) in [
        ("run_profile", &report.run_profile),
        ("ssp_profile", &report.ssp_profile),
    ] {
        let bytes = profile.store.to_bytes();
        let path = dir.join(format!("{name}.fgrv"));
        fs::write(&path, &bytes).expect("store artifact writes");

        let reread = fs::read(&path).expect("store artifact reads back");
        let restored = ProfileStore::from_bytes(&reread).expect("store artifact decodes");
        let diff = profile.store.diff(&restored);
        let reencoded = restored.to_bytes();
        let identical = diff.is_identical() && reencoded == bytes;
        println!(
            "{name}: {} points, {} bytes -> {}",
            profile.len(),
            bytes.len(),
            if identical {
                "bit-identical round trip".to_string()
            } else {
                failures += 1;
                format!("ROUND TRIP DIVERGED\n{}", diff.summary())
            }
        );
    }

    let csv_path = dir.join("ssp_profile.csv");
    fs::write(
        &csv_path,
        profile_to_csv(&report.ssp_profile, ProfileAxis::Toi),
    )
    .expect("csv artifact writes");
    println!(
        "csv: {} ({} LOIs)",
        csv_path.display(),
        report.ssp_profile.len()
    );

    if failures > 0 {
        eprintln!("{failures} store artifact(s) failed the bit-identity check");
        std::process::exit(1);
    }
}
