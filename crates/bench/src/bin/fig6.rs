//! Regenerates the paper's Fig. 6: CB-8K-GEMM total and XCD power over a
//! run — the power excursion / throttle / SSE / SSP trajectory.

use fingrav_bench::experiments::{fig6, run_profile_rows};
use fingrav_bench::render::{out_dir, shape_summary, write_run_rows};
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 6: CB-8K-GEMM total and XCD power ==\n");
    let s = fig6(scale);
    println!("{}", shape_summary("CB-8K-GEMM", &s));
    println!(
        "throttle detected: {}; SSE index {}, SSP index {}, {} executions/run, {} golden runs\n",
        s.report.throttle_detected,
        s.report.sse_index,
        s.report.ssp_index,
        s.report.executions_per_run,
        s.report.golden_runs
    );
    println!(
        "{}",
        fingrav_core::chart::profile_chart(&s.report.run_profile, 64, 12)
    );
    write_run_rows(&dir, "fig6_cb8k.csv", &run_profile_rows(&s.report)).expect("csv");
    println!("wrote {}", dir.join("fig6_cb8k.csv").display());
}
