//! Regenerates the paper's Fig. 9: total-power comparison of interleaved
//! GEMM/GEMV executions against their isolated SSP profiles.

use fingrav_bench::experiments::fig9;
use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 9: interleaved-kernel power vs isolated SSP ==\n");
    let d = fig9(scale);
    println!("| scenario | target | isolated SSP W | interleaved W | effect | LOIs |");
    println!("|---|---|---|---|---|---|");
    let mut csv = String::from("scenario,target,isolated_w,interleaved_w,effect,lois\n");
    for s in &d.scenarios {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:+.0}% | {} |",
            s.name,
            s.target,
            s.effect.isolated_w,
            s.effect.interleaved_w,
            s.effect.relative() * 100.0,
            s.interleaved_lois
        );
        csv.push_str(&format!(
            "{},{},{:.1},{:.1},{:.4},{}\n",
            s.name,
            s.target,
            s.effect.isolated_w,
            s.effect.interleaved_w,
            s.effect.relative(),
            s.interleaved_lois
        ));
    }
    std::fs::write(dir.join("fig9.csv"), csv).expect("write fig9.csv");
    println!("\nwrote {}", dir.join("fig9.csv").display());
}
