//! Quantifies the paper's three Table II recommendations on the simulated
//! platform:
//!
//! 1. **Co-schedule complementary kernels** — concurrently executing a
//!    compute-bound GEMM with a memory-bound kernel or latency-bound
//!    collective uses the power headroom without tripping the cap, while
//!    pairing two compute-heavy kernels contends and throttles.
//! 2. **Prioritize XCD power optimization for compute-heavy kernels** —
//!    the sensitivity of total power to a 10% XCD-activity reduction
//!    dwarfs the same reduction on IOD or HBM.
//! 3. **Pursue power proportionality for compute-light kernels** — the
//!    utilization-per-XCD-watt spread across CB GEMMs shows the headroom.
//!
//! Every recommendation profiles its kernels as one sharded campaign on
//! [`fingrav_core::executor::CampaignExecutor`]; per-kernel seeds match
//! the historical serial binaries, so regenerated CSVs are unchanged.

use fingrav_bench::harness::{default_workers, named_campaign_report, runner_config, Scale};
use fingrav_bench::render::out_dir;
use fingrav_core::campaign::Campaign;
use fingrav_sim::config::SimConfig;
use fingrav_sim::fabric::Fabric;
use fingrav_sim::kernel::KernelDesc;
use fingrav_workloads::concurrent::co_schedule;
use fingrav_workloads::suite;
use fingrav_workloads::Rccl;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");
    let runs = scale.runs(120);
    println!(
        "(campaigns sharded across {} workers via CampaignExecutor)\n",
        default_workers()
    );

    recommendation_1(&dir, runs);
    recommendation_2(&dir, runs);
    recommendation_3(&dir, runs);
    println!("\nwrote recommendation CSVs in {}", dir.display());
}

/// Profiles `(seed-name, kernel)` pairs as one parallel campaign; reports
/// come back in entry order.
fn profile_all(
    entries: Vec<(String, KernelDesc)>,
    runs: Option<u32>,
) -> Vec<fingrav_core::runner::KernelPowerReport> {
    let mut campaign = Campaign::new(runner_config(runs));
    let names: Vec<String> = entries.iter().map(|(n, _)| n.clone()).collect();
    for (_, desc) in entries {
        campaign.add(desc);
    }
    named_campaign_report(&campaign, names)
}

fn recommendation_1(dir: &std::path::Path, runs: Option<u32>) {
    println!("== Recommendation 1: co-schedule complementary power profiles ==\n");
    println!(
        "(the paper's example: latency-bound communication in parallel with any other\n\
         computation; the anti-pattern: stacking two compute-heavy kernels)\n"
    );
    let m = SimConfig::default().machine.clone();
    let rccl = Rccl::new(m.clone(), Fabric::default());
    let gemv8 = suite::mb_gemv(&m, 8192);
    let cb2 = suite::cb_gemm(&m, 2048);
    let cb4 = suite::cb_gemm(&m, 4096);
    let lb_ar = rccl.all_reduce(128 * 1024);

    let pairs = [
        // Complementary: memory-bound compute alongside LB communication.
        ("MB-8K-GEMV + LB-AR-128KB", &gemv8, &lb_ar),
        // Mildly overlapping: a headroom-bearing GEMM plus LB comm.
        ("CB-2K-GEMM + LB-AR-128KB", &cb2, &lb_ar),
        // Anti-pattern: two compute-heavy kernels fight for XCD and cap.
        ("CB-4K-GEMM + CB-4K-GEMM", &cb4, &cb4),
    ];
    let analyses: Vec<_> = pairs
        .iter()
        .map(|(name, a, b)| (name, co_schedule(a, b).expect("valid kernels")))
        .collect();
    let reports = profile_all(
        analyses
            .iter()
            .map(|(name, analysis)| (format!("rec1-{name}"), analysis.combined.clone()))
            .collect(),
        runs,
    );

    println!("| pair | contention | speed-up vs serial | measured SSP W | throttled |");
    println!("|---|---|---|---|---|");
    let mut csv = String::from("pair,contention,speedup,ssp_w,throttled\n");
    for ((name, analysis), report) in analyses.iter().zip(&reports) {
        let ssp = report.ssp_mean_total_w.unwrap_or(f64::NAN);
        println!(
            "| {name} | {:.2} | {:.2}x | {ssp:.0} | {} |",
            analysis.contention,
            analysis.speedup_vs_serial,
            if report.throttle_detected {
                "yes"
            } else {
                "no"
            }
        );
        csv.push_str(&format!(
            "{name},{:.3},{:.3},{ssp:.1},{}\n",
            analysis.contention, analysis.speedup_vs_serial, report.throttle_detected
        ));
    }
    std::fs::write(dir.join("recommendation1.csv"), csv).expect("write csv");
    println!();
}

fn recommendation_2(dir: &std::path::Path, runs: Option<u32>) {
    println!("== Recommendation 2: XCD power dominates compute-heavy kernels ==\n");
    println!(
        "(sensitivity measured on CB-2K-GEMM, which has cap headroom; for cap-limited\n\
         kernels like CB-8K-GEMM the same saving converts into recovered frequency,\n\
         i.e. performance, instead of lower power)\n"
    );
    let m = SimConfig::default().machine.clone();
    let base = suite::cb_gemm(&m, 2048);
    let components = [
        ("XCD", 0.9, 1.0, 1.0),
        ("IOD", 1.0, 0.9, 1.0),
        ("HBM", 1.0, 1.0, 0.9),
    ];
    let mut entries = vec![("rec2-base".to_string(), base.clone())];
    for (name, dx, di, dh) in components {
        let mut k = base.clone();
        k.activity = fingrav_sim::power::Activity::new(
            k.activity.xcd * dx,
            k.activity.iod * di,
            k.activity.hbm * dh,
        );
        k.name = format!("CB-2K-GEMM(-10% {name})");
        entries.push((format!("rec2-{name}"), k));
    }
    let reports = profile_all(entries, runs);
    let base_ssp = reports[0].ssp_mean_total_w.expect("SSP measured");

    println!("| 10% activity reduction on | SSP total W | saving |");
    println!("|---|---|---|");
    let mut csv = String::from("component,ssp_w,saving_w\n");
    for ((name, ..), report) in components.iter().zip(&reports[1..]) {
        let ssp = report.ssp_mean_total_w.expect("SSP measured");
        println!("| {name} | {ssp:.0} | {:+.0} W |", base_ssp - ssp);
        csv.push_str(&format!("{name},{ssp:.1},{:.1}\n", base_ssp - ssp));
    }
    std::fs::write(dir.join("recommendation2.csv"), csv).expect("write csv");
    println!("\nbaseline CB-2K-GEMM SSP: {base_ssp:.0} W\n");
}

fn recommendation_3(dir: &std::path::Path, runs: Option<u32>) {
    println!("== Recommendation 3: power proportionality gap ==\n");
    let m = SimConfig::default().machine.clone();
    let sizes = [8192u64, 4096, 2048];
    let reports = profile_all(
        sizes
            .iter()
            .map(|n| (format!("rec3-{n}"), suite::cb_gemm(&m, *n)))
            .collect(),
        runs,
    );

    let mut csv = String::from("kernel,utilization,xcd_w,util_per_watt\n");
    let mut points = Vec::new();
    for (n, report) in sizes.iter().zip(&reports) {
        let desc = suite::cb_gemm(&m, *n);
        let xcd = report.ssp_profile.mean_power().expect("SSP LOIs").xcd;
        println!(
            "{}: utilization {:.2}, XCD {xcd:.0} W -> {:.4} util/W",
            desc.name,
            desc.compute_utilization,
            desc.compute_utilization / xcd
        );
        csv.push_str(&format!(
            "{},{:.3},{xcd:.1},{:.6}\n",
            desc.name,
            desc.compute_utilization,
            desc.compute_utilization / xcd
        ));
        points.push(fingrav_core::insights::ProportionalityPoint {
            label: desc.name,
            compute_utilization: desc.compute_utilization,
            xcd_power_w: xcd,
        });
    }
    if let Some(spread) = fingrav_core::insights::proportionality_spread(&points) {
        println!(
            "\nutilization-per-XCD-watt spread: {spread:.2}x — compute-light GEMMs burn \
             nearly the same XCD power for half the work (takeaway #4); \
             performance-iso schedules with lower power are the opportunity."
        );
    }
    std::fs::write(dir.join("recommendation3.csv"), csv).expect("write csv");
}
