//! Ablation studies of FinGraV's design choices (beyond the paper's own
//! Fig. 5 evaluation):
//!
//! 1. **sync variant** — placement error of none / Lang-style / single- /
//!    two-anchor sync against simulator ground truth, under amplified
//!    counter drift;
//! 2. **binning margin sweep** — golden-run fraction and profile scatter
//!    across margins (why Table I picks 2-5 %);
//! 3. **run-count sweep** — SSP LOI yield and profile stability versus
//!    #runs (why Table I picks 200-400);
//! 4. **instantaneous sampler** — the paper's note that with an
//!    instantaneous power sampler FinGraV can assess power regardless of
//!    execution time and run setup: with a fast logger the interleaving
//!    contamination of Fig. 9 disappears.

use fingrav_bench::experiments::bucketed_scatter;
use fingrav_bench::harness::{named_campaign_report, seed_for};
use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;
use fingrav_core::backend::PowerBackend;
use fingrav_core::campaign::Campaign;
use fingrav_core::profile::place_logs;
use fingrav_core::runner::{FingravRunner, RunnerConfig};
use fingrav_core::stats;
use fingrav_core::sync::{ReadDelayCalibration, TimeSync};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::script::Script;
use fingrav_sim::time::SimDuration;
use fingrav_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");
    let runs = match scale {
        Scale::Full => 120,
        Scale::Quick => 40,
        Scale::Bench => 8,
    };

    sync_ablation(&dir);
    margin_sweep(&dir, runs);
    runs_sweep(&dir);
    instantaneous_sampler(&dir, runs);
    println!("\nwrote ablation CSVs in {}", dir.display());
}

/// Ablation 1: sync variants under 400 ppm drift, error vs ground truth.
fn sync_ablation(dir: &std::path::Path) {
    println!("== Ablation 1: time-sync variants under 400 ppm drift ==\n");
    let mut cfg = SimConfig::default();
    cfg.clocks.gpu_drift_ppm = 400.0;
    let machine = cfg.machine.clone();
    let mut sim = Simulation::new(cfg, seed_for("abl-sync")).expect("valid");
    let k =
        Simulation::register_kernel(&mut sim, suite::cb_gemm(&machine, 4096)).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .read_gpu_timestamp()
        .launch_timed(k, 120) // ~26 ms: drift accumulates
        .sleep(SimDuration::from_millis(1))
        .read_gpu_timestamp()
        .stop_power_logger()
        .build();
    let trace = sim.run_script(&script).expect("script");
    let first = trace.timestamp_reads[0];
    let last = *trace.timestamp_reads.last().expect("two reads");
    let calib = ReadDelayCalibration {
        median_rtt_ns: first.rtt_ns(),
        assumed_sample_frac: 0.5,
    };
    let zero = ReadDelayCalibration {
        median_rtt_ns: 0,
        assumed_sample_frac: 0.0,
    };
    let hz = PowerBackend::gpu_counter_hz(&sim);
    let variants: Vec<(&str, Option<TimeSync>)> = vec![
        ("none (naive grid)", None),
        (
            "lang (zero delay, nominal rate)",
            Some(TimeSync::from_anchor(&first, &zero, hz)),
        ),
        (
            "single-anchor (calibrated delay)",
            Some(TimeSync::from_anchor(&first, &calib, hz)),
        ),
        (
            "two-anchor (drift-cancelling)",
            Some(TimeSync::from_two_anchors(&first, &last, &calib).expect("anchors")),
        ),
    ];

    let true_cpu = |ticks: u64| -> f64 {
        let t = sim
            .gpu_clock()
            .to_sim(fingrav_sim::time::GpuTicks::from_raw(ticks));
        sim.cpu_clock().now(t).as_nanos() as f64
    };
    let origin = trace.executions[0].cpu_start.as_nanos() as f64;

    let mut csv = String::from("variant,mean_error_ns\n");
    println!("| sync variant | mean placement error |");
    println!("|---|---|");
    for (name, sync) in variants {
        let errs: Vec<f64> = trace
            .power_logs
            .iter()
            .enumerate()
            .map(|(i, log)| {
                let truth = true_cpu(log.ticks.as_raw());
                let placed = match &sync {
                    Some(s) => s.cpu_ns_of_ticks(log.ticks.as_raw()),
                    None => origin + i as f64 * 1e6, // naive 1 ms grid
                };
                (placed - truth).abs()
            })
            .collect();
        let mean = stats::mean(&errs).unwrap_or(0.0);
        println!("| {name} | {:.2} us |", mean / 1e3);
        csv.push_str(&format!("{name},{mean:.0}\n"));
    }
    std::fs::write(dir.join("ablation_sync.csv"), csv).expect("write csv");
    println!();
}

/// Ablation 2: binning-margin sweep on CB-4K-GEMM — one campaign whose
/// entries share a kernel but carry per-entry margin overrides, sharded by
/// the executor (every arm keeps the historical `abl-margin` seed).
fn margin_sweep(dir: &std::path::Path, runs: u32) {
    println!("== Ablation 2: binning margin sweep (CB-4K-GEMM) ==\n");
    println!("| margin | golden runs | SSP LOIs | plateau scatter |");
    println!("|---|---|---|---|");
    let mut csv = String::from("margin,golden,runs,ssp_lois,scatter_w\n");
    let machine = SimConfig::default().machine.clone();
    let margins = [0.005, 0.01, 0.02, 0.05, 0.10];
    let mut campaign = Campaign::with_defaults();
    for margin in margins {
        campaign.add_with_config(
            suite::cb_gemm(&machine, 4096),
            RunnerConfig {
                runs_override: Some(runs),
                margin_override: Some(margin),
                extra_run_batches: 0,
                ..RunnerConfig::default()
            },
        );
    }
    let reports = named_campaign_report(&campaign, vec!["abl-margin".to_string(); margins.len()]);
    for (margin, r) in margins.iter().zip(&reports) {
        let busy = fingrav_bench::experiments::busy_end_ns(r);
        let scatter = bucketed_scatter(&r.run_profile, busy * 0.5, busy, 250e3);
        println!(
            "| {:.1}% | {}/{} | {} | {:.1} W |",
            margin * 100.0,
            r.golden_runs,
            r.runs_executed,
            r.ssp_loi_count(),
            scatter
        );
        csv.push_str(&format!(
            "{margin},{},{},{},{scatter:.2}\n",
            r.golden_runs,
            r.runs_executed,
            r.ssp_loi_count()
        ));
    }
    std::fs::write(dir.join("ablation_margin.csv"), csv).expect("write csv");
    println!();
}

/// Ablation 3: run-count sweep on CB-2K-GEMM (the LOI-starved case), as a
/// per-entry-config campaign on the executor.
fn runs_sweep(dir: &std::path::Path) {
    println!("== Ablation 3: run-count sweep (CB-2K-GEMM) ==\n");
    println!("| runs | SSE LOIs | SSP LOIs | SSP mean W |");
    println!("|---|---|---|---|");
    let mut csv = String::from("runs,sse_lois,ssp_lois,ssp_w\n");
    let machine = SimConfig::default().machine.clone();
    let counts = [25u32, 50, 100, 200];
    let mut campaign = Campaign::with_defaults();
    for runs in counts {
        campaign.add_with_config(
            suite::cb_gemm(&machine, 2048),
            RunnerConfig {
                runs_override: Some(runs),
                extra_run_batches: 0,
                ..RunnerConfig::default()
            },
        );
    }
    let reports = named_campaign_report(&campaign, vec!["abl-runs".to_string(); counts.len()]);
    for (runs, r) in counts.iter().zip(&reports) {
        println!(
            "| {} | {} | {} | {:.0} |",
            runs,
            r.sse_loi_count(),
            r.ssp_loi_count(),
            r.ssp_mean_total_w.unwrap_or(f64::NAN)
        );
        csv.push_str(&format!(
            "{runs},{},{},{:.1}\n",
            r.sse_loi_count(),
            r.ssp_loi_count(),
            r.ssp_mean_total_w.unwrap_or(f64::NAN)
        ));
    }
    std::fs::write(dir.join("ablation_runs.csv"), csv).expect("write csv");
    println!();
}

/// Ablation 4: an instantaneous sampler removes interleaving contamination.
fn instantaneous_sampler(dir: &std::path::Path, runs: u32) {
    println!("== Ablation 4: averaging vs instantaneous power sampler ==\n");
    let machine = SimConfig::default().machine.clone();
    let target = suite::cb_gemm(&machine, 2048);
    let gemv = suite::mb_gemv(&machine, 4096);

    let measure = |cfg: SimConfig, seed: u64| -> (f64, f64) {
        // Isolated SSP of the target on this telemetry config.
        let mut sim = Simulation::new(cfg.clone(), seed).expect("valid");
        let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(runs.max(30)));
        let iso = runner
            .profile(&target)
            .expect("profiles")
            .ssp_mean_total_w
            .expect("SSP LOIs");
        // Interleaved after 40 GEMVs.
        let mut sim = Simulation::new(cfg, seed + 1).expect("valid");
        let pre = Simulation::register_kernel(&mut sim, gemv.clone()).expect("register");
        let tgt = Simulation::register_kernel(&mut sim, target.clone()).expect("register");
        let mut lois = Vec::new();
        for _ in 0..(runs * 4) {
            let script = Script::builder()
                .begin_run()
                .start_power_logger()
                .read_gpu_timestamp()
                .sleep_uniform(SimDuration::ZERO, SimDuration::from_millis(1))
                .launch_timed(pre, 40)
                .launch_timed(tgt, 1)
                .sleep(SimDuration::from_millis(1))
                .read_gpu_timestamp()
                .stop_power_logger()
                .sleep(SimDuration::from_millis(8))
                .build();
            let trace = sim.run_script(&script).expect("script");
            let read = trace.timestamp_reads[0];
            let calib = ReadDelayCalibration {
                median_rtt_ns: read.rtt_ns(),
                assumed_sample_frac: 0.5,
            };
            let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&sim));
            for log in place_logs(&trace, &sync) {
                if let Some((pos, _)) = log.containing_exec {
                    if trace.executions[pos].kernel == tgt {
                        lois.push(log.power.total());
                    }
                }
            }
        }
        (iso, stats::mean(&lois).unwrap_or(iso))
    };

    // The paper's 1 ms averaging logger.
    let (iso_avg, inter_avg) = measure(SimConfig::default(), seed_for("abl-inst-a"));
    // An instantaneous sampler: 40 us emission with a 40 us window.
    let mut fast = SimConfig::default();
    fast.telemetry.logger_period = SimDuration::from_micros(40);
    fast.telemetry.logger_window = SimDuration::from_micros(40);
    fast.telemetry.sensor_period = SimDuration::from_micros(10);
    let (iso_inst, inter_inst) = measure(fast, seed_for("abl-inst-b"));

    let eff_avg = (inter_avg - iso_avg) / iso_avg;
    let eff_inst = (inter_inst - iso_inst) / iso_inst;
    println!("| sampler | isolated W | interleaved W | contamination |");
    println!("|---|---|---|---|");
    println!(
        "| 1 ms averaging | {iso_avg:.0} | {inter_avg:.0} | {:+.0}% |",
        eff_avg * 100.0
    );
    println!(
        "| 40 us instantaneous | {iso_inst:.0} | {inter_inst:.0} | {:+.0}% |",
        eff_inst * 100.0
    );
    println!(
        "\nwith an instantaneous sampler, FinGraV assesses kernel power regardless of \
         run setup (paper Section V-C3)."
    );
    std::fs::write(
        dir.join("ablation_sampler.csv"),
        format!(
            "sampler,isolated_w,interleaved_w,effect\naveraging_1ms,{iso_avg:.1},{inter_avg:.1},{eff_avg:.4}\ninstant_40us,{iso_inst:.1},{inter_inst:.1},{eff_inst:.4}\n"
        ),
    )
    .expect("write csv");
}
