//! Regenerates the paper's Fig. 10: component-level comparison of the
//! evaluated communication kernels (AG/AR at latency- and bandwidth-bound
//! sizes) against CB-8K-GEMM.

use fingrav_bench::experiments::{fig10, max_total};
use fingrav_bench::render::{component_table, out_dir, write_profile};
use fingrav_bench::Scale;
use fingrav_core::profile::ProfileAxis;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 10: communication kernels vs CB-8K-GEMM ==\n");
    let d = fig10(scale);
    let reference = max_total(&d.rows);
    println!("{}", component_table(&d.rows, reference));

    for report in &d.reports {
        let name = format!(
            "fig10_{}.csv",
            report.label.to_lowercase().replace('/', "-")
        );
        write_profile(&dir, &name, &report.ssp_profile, ProfileAxis::Toi).expect("csv");
    }
    println!("wrote per-kernel SSP CSVs in {}", dir.display());
}
