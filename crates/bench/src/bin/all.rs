//! Regenerates every paper table and figure in one invocation, writing all
//! artefacts to the output directory (default `results/`). Experiments run
//! in parallel, one OS thread per artefact, since each owns an independent
//! simulation.

use std::time::Instant;

use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");
    let t0 = Instant::now();

    let dir_str = dir.display().to_string();
    let scale_flag = match scale {
        Scale::Full => None,
        Scale::Quick => Some("--quick"),
        Scale::Bench => Some("--bench"),
    };
    // Forward an explicit --workers N to every child so the whole artefact
    // tree shards consistently (results are worker-count-invariant), and
    // the checkpointing flags so every child campaign is durable under the
    // same root.
    let workers = fingrav_bench::harness::worker_override();
    let checkpoint_dir = fingrav_bench::harness::checkpoint_override();
    let resume = fingrav_bench::harness::resume_override();
    let serve = fingrav_bench::harness::serve_override();
    let connect = fingrav_bench::harness::connect_override();
    // Transport runs share one listen address, so the children must bind
    // (and connect) one at a time, in the same order on both nodes.
    let sequential = serve.is_some() || connect.is_some();

    // Each artefact is its own binary; running them in-process sequentially
    // would serialize, so spawn the sibling binaries in parallel instead.
    let bins = [
        "table1",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table2",
        "ablations",
        "recommendations",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let run_bin = |bin: &'static str| {
        let exe = exe_dir.join(bin);
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--out").arg(&dir_str);
        if let Some(flag) = scale_flag {
            cmd.arg(flag);
        }
        if let Some(n) = workers {
            cmd.arg("--workers").arg(n.to_string());
        }
        if let Some(ck) = &checkpoint_dir {
            cmd.arg("--checkpoint-dir").arg(ck);
            if resume {
                cmd.arg("--resume");
            }
        }
        if let Some(addr) = &serve {
            cmd.arg("--serve").arg(addr);
        }
        if let Some(addr) = &connect {
            cmd.arg("--connect").arg(addr);
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", exe.display()));
        println!(
            "---- {bin} ({}) ----\n{}{}",
            if out.status.success() { "ok" } else { "FAILED" },
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        (bin, out.status.success())
    };

    let failed: Vec<&str> = if sequential {
        bins.into_iter()
            .map(run_bin)
            .filter(|&(_, ok)| !ok)
            .map(|(bin, _)| bin)
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = bins
                .into_iter()
                .map(|bin| s.spawn(|| run_bin(bin)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("experiment thread"))
                .filter(|&(_, ok)| !ok)
                .map(|(bin, _)| bin)
                .collect()
        })
    };

    if failed.is_empty() {
        println!(
            "\nregenerated all tables and figures into {} in {:.1}s",
            dir.display(),
            t0.elapsed().as_secs_f64()
        );
    } else {
        eprintln!(
            "\nregeneration FAILED after {:.1}s; failed artefacts: {}",
            t0.elapsed().as_secs_f64(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
