//! Regenerates the paper's Table I: FinGraV profiling guidance, plus an
//! empirical validation of each range's LOI yield.

use fingrav_bench::experiments::table1;
use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Table I: FinGraV profiling guidance ==\n");
    let data = table1(scale);
    println!("{}", data.table_markdown);

    println!("Empirical validation (LOI yield at the guidance run counts):\n");
    println!("| exec range | runs | margin | LOI target | LOIs harvested | golden runs |");
    println!("|---|---|---|---|---|---|");
    let mut csv = String::from("exec_range,runs,margin,loi_target,lois,golden_frac\n");
    for r in &data.rows {
        println!(
            "| {} | {} | {:.0}% | {} | {} | {:.0}% |",
            r.exec_label,
            r.runs,
            r.margin_frac * 100.0,
            r.loi_target,
            r.lois_harvested,
            r.golden_fraction * 100.0
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.3}\n",
            r.exec_label, r.runs, r.margin_frac, r.loi_target, r.lois_harvested, r.golden_fraction
        ));
    }
    std::fs::write(dir.join("table1.csv"), csv).expect("write table1.csv");
    println!("\nwrote {}", dir.join("table1.csv").display());
}
