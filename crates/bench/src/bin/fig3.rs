//! Regenerates the paper's Fig. 3: measured evidence for the four
//! challenges of fine-grain GPU power analysis (C1-C4).

use fingrav_bench::experiments::fig3;
use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 3: challenges in fine-grain GPU power analysis ==\n");
    let d = fig3(scale);
    println!(
        "C1 (low sampling frequency): coarse 50 ms sampler missed {:.0}% of runs entirely;\n\
         \u{20}   the fine 1 ms logger captured {:.1} logs per identical run",
        d.c1_coarse_miss_rate * 100.0,
        d.c1_fine_logs_per_run
    );
    println!(
        "C2 (CPU-GPU time sync): naive host-grid placement errs by sigma = {:.0} us",
        d.c2_naive_placement_error_ns / 1e3
    );
    println!(
        "C3 (execution-time variation): p99/median spread {:.1}%; {:.1}% of executions \
         are binning outliers",
        d.c3_time_spread * 100.0,
        d.c3_outlier_fraction * 100.0
    );
    println!(
        "C4 (power variance across executions): identical executions early vs late in a \
         burst differ by {:.0}% measured power",
        d.c4_early_late_power_gap * 100.0
    );

    let csv = format!(
        "metric,value\nc1_coarse_miss_rate,{}\nc1_fine_logs_per_run,{}\n\
         c2_naive_error_ns,{}\nc3_time_spread,{}\nc3_outlier_fraction,{}\n\
         c4_early_late_gap,{}\n",
        d.c1_coarse_miss_rate,
        d.c1_fine_logs_per_run,
        d.c2_naive_placement_error_ns,
        d.c3_time_spread,
        d.c3_outlier_fraction,
        d.c4_early_late_power_gap
    );
    std::fs::write(dir.join("fig3.csv"), csv).expect("write fig3.csv");
    println!("\nwrote {}", dir.join("fig3.csv").display());
}
