//! Regenerates the paper's Fig. 7: component-level comparison of the
//! compute-bound GEMMs and memory-bound GEMVs (SSP profiles, relative
//! power, linear-regression lines).

use fingrav_bench::experiments::{fig7, max_total};
use fingrav_bench::render::{component_table, out_dir, write_profile};
use fingrav_bench::Scale;
use fingrav_core::profile::{PowerAxis, ProfileAxis};
use fingrav_sim::power::Component;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 7: component analysis of CB GEMMs vs MB GEMVs ==\n");
    let d = fig7(scale);
    let reference = max_total(&d.rows);
    println!("{}", component_table(&d.rows, reference));
    println!(
        "power-proportionality spread across CB GEMMs (takeaway #4): {:.2}x",
        d.cb_proportionality_spread.unwrap_or(f64::NAN)
    );

    for report in &d.reports {
        let name = format!("fig7_{}.csv", report.label.to_lowercase());
        write_profile(&dir, &name, &report.ssp_profile, ProfileAxis::Toi).expect("csv");
        // Linear regression lines as in the paper's presentation.
        if let Ok(fit) = report
            .ssp_profile
            .linear_fit(ProfileAxis::Toi, PowerAxis::Component(Component::Xcd))
        {
            let (xs, _) = report
                .ssp_profile
                .series(ProfileAxis::Toi, PowerAxis::Total);
            if let (Some(&lo), Some(&hi)) = (xs.first(), xs.last()) {
                let mut csv = String::from("x_ns,xcd_fit_w\n");
                for (x, y) in fit.sample(lo, hi, 32) {
                    csv.push_str(&format!("{x:.1},{y:.3}\n"));
                }
                std::fs::write(
                    dir.join(format!("fig7_{}_xcdfit.csv", report.label.to_lowercase())),
                    csv,
                )
                .expect("write fit csv");
            }
        }
    }
    println!(
        "wrote per-kernel SSP CSVs and XCD fit lines in {}",
        dir.display()
    );
}
