//! Regenerates the paper's Fig. 5: FinGraV methodology evaluation on
//! CB-4K-GEMM — benefit of CPU-GPU time sync, benefit of execution-time
//! binning, SSE/SSP differentiation, and resiliency to lowering #runs.

use fingrav_bench::experiments::{fig5, run_profile_rows};
use fingrav_bench::render::{out_dir, write_profile, write_run_rows};
use fingrav_bench::Scale;
use fingrav_core::profile::ProfileAxis;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Fig. 5: methodology evaluation (CB-4K-GEMM) ==\n");
    let d = fig5(scale);

    println!(
        "(a) CPU-GPU time sync: quartic-fit R^2 synchronized {:.3} vs unsynchronized {:.3}",
        d.synced_r2, d.unsynced_r2
    );
    println!(
        "(b) execution-time binning: RMS scatter around the profile {:.1} W binned vs {:.1} W \
         unbinned ({} golden / {} runs)",
        d.binned_rms_w, d.unbinned_rms_w, d.synced.golden_runs, d.synced.runs_executed
    );
    println!(
        "(c) profile differentiation: SSE {} W vs SSP {} W -> error {}",
        d.synced
            .sse_mean_total_w
            .map(|w| format!("{w:.0}"))
            .unwrap_or_else(|| "-".into()),
        d.synced
            .ssp_mean_total_w
            .map(|w| format!("{w:.0}"))
            .unwrap_or_else(|| "-".into()),
        d.sse_vs_ssp_error
            .map(|e| format!("{:.0}%", e * 100.0))
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "(d) #runs resiliency: degree-4 fit from {} runs deviates at most {:.1}% from the \
         {}-run fit",
        d.few_runs.runs_executed,
        d.few_runs_fit_deviation * 100.0,
        d.synced.runs_executed
    );

    write_run_rows(&dir, "fig5_synced.csv", &run_profile_rows(&d.synced)).expect("csv");
    write_profile(&dir, "fig5_unsynced.csv", &d.unsynced, ProfileAxis::RunTime).expect("csv");
    write_run_rows(&dir, "fig5_unbinned.csv", &run_profile_rows(&d.unbinned)).expect("csv");
    write_run_rows(&dir, "fig5_50runs.csv", &run_profile_rows(&d.few_runs)).expect("csv");
    println!(
        "\nwrote fig5_synced.csv / fig5_unsynced.csv / fig5_unbinned.csv / fig5_50runs.csv in {}",
        dir.display()
    );
}
