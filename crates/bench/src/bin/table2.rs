//! Regenerates the paper's Table II: verifies each takeaway /
//! measurement-guidance / recommendation against freshly measured profiles.

use fingrav_bench::experiments::table2;
use fingrav_bench::render::out_dir;
use fingrav_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(args.clone());
    let dir = out_dir(args).expect("create output directory");

    println!("== Table II: takeaway verification ==\n");
    let d = table2(scale);
    println!("| # | takeaway | measured evidence | holds |");
    println!("|---|---|---|---|");
    let mut csv = String::from("takeaway,holds,evidence\n");
    let mut all_hold = true;
    for c in &d.checks {
        println!(
            "| {} | {} | {} | {} |",
            c.takeaway,
            c.description,
            c.evidence,
            if c.holds { "YES" } else { "NO" }
        );
        csv.push_str(&format!("{},{},\"{}\"\n", c.takeaway, c.holds, c.evidence));
        all_hold &= c.holds;
    }
    std::fs::write(dir.join("table2.csv"), csv).expect("write table2.csv");
    println!("\nwrote {}", dir.join("table2.csv").display());
    println!(
        "\nall takeaways reproduced: {}",
        if all_hold { "YES" } else { "NO" }
    );
    if !all_hold {
        std::process::exit(1);
    }
}
