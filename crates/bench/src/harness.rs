//! Experiment-harness plumbing: scales, seeds, simulation construction.

use fingrav_core::runner::{FingravRunner, KernelPowerReport, RunnerConfig};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::kernel::KernelDesc;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-guided run counts (Table I: 200–400 runs per kernel).
    Full,
    /// Reduced run counts for quick regeneration and CI.
    Quick,
    /// Minimal run counts for Criterion micro-benchmarks.
    Bench,
}

impl Scale {
    /// Parses `--quick`/`--full` style argv; defaults to `Full`.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
        for a in args {
            match a.as_str() {
                "--quick" => return Scale::Quick,
                "--bench" => return Scale::Bench,
                _ => {}
            }
        }
        Scale::Full
    }

    /// Run count to use when the paper would use `full` runs.
    pub fn runs(&self, full: u32) -> Option<u32> {
        match self {
            Scale::Full => {
                if full == 0 {
                    None // defer to the guidance table
                } else {
                    Some(full)
                }
            }
            Scale::Quick => Some((full.max(40) / 4).max(30)),
            Scale::Bench => Some(8),
        }
    }
}

/// Deterministic seed per experiment name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds a fresh default-config simulation for an experiment.
pub fn simulation(name: &str) -> Simulation {
    Simulation::new(SimConfig::default(), seed_for(name)).expect("default configuration is valid")
}

/// Runner configuration for a scale (`None` runs = paper guidance counts).
pub fn runner_config(runs: Option<u32>) -> RunnerConfig {
    RunnerConfig {
        runs_override: runs,
        ..RunnerConfig::default()
    }
}

/// Profiles one kernel on a fresh simulation.
pub fn profile_kernel(exp: &str, desc: &KernelDesc, runs: Option<u32>) -> KernelPowerReport {
    let mut sim = simulation(exp);
    let mut runner = FingravRunner::new(&mut sim, runner_config(runs));
    runner
        .profile(desc)
        .expect("profiling a suite kernel succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(vec![]), Scale::Full);
        assert_eq!(Scale::from_args(vec!["--quick".into()]), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--bench".into()]), Scale::Bench);
        assert_eq!(
            Scale::from_args(vec!["--out".into(), "x".into()]),
            Scale::Full
        );
    }

    #[test]
    fn scale_run_counts() {
        assert_eq!(Scale::Full.runs(200), Some(200));
        assert_eq!(Scale::Full.runs(0), None);
        assert_eq!(Scale::Quick.runs(400), Some(100));
        assert_eq!(Scale::Quick.runs(40), Some(30));
        assert_eq!(Scale::Bench.runs(400), Some(8));
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("fig5"), seed_for("fig6"));
        assert_eq!(seed_for("fig5"), seed_for("fig5"));
    }
}
