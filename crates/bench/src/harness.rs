//! Experiment-harness plumbing: scales, seeds, simulation construction,
//! and campaign execution over the parallel executor.

use fingrav_core::backend::{FnBackendFactory, SimulationFactory};
use fingrav_core::campaign::Campaign;
use fingrav_core::executor::CampaignExecutor;
use fingrav_core::runner::{KernelPowerReport, RunnerConfig};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::kernel::KernelDesc;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-guided run counts (Table I: 200–400 runs per kernel).
    Full,
    /// Reduced run counts for quick regeneration and CI.
    Quick,
    /// Minimal run counts for Criterion micro-benchmarks.
    Bench,
}

impl Scale {
    /// Parses `--quick`/`--full`/`--bench` argv; defaults to `Full`.
    /// Unrecognized flags are surfaced on stderr (`--out DIR`, which every
    /// binary also accepts, is recognized and skipped along with its
    /// value).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
        let (scale, unknown) = Scale::parse_args(args);
        for flag in unknown {
            eprintln!("warning: unrecognized flag `{flag}` (expected --quick, --full, --bench, or --out DIR)");
        }
        scale
    }

    /// Like [`Scale::from_args`], returning the unrecognized flags instead
    /// of printing them. The last scale flag wins when several are given.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> (Scale, Vec<String>) {
        let mut scale = Scale::Full;
        let mut unknown = Vec::new();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => scale = Scale::Quick,
                "--full" => scale = Scale::Full,
                "--bench" => scale = Scale::Bench,
                "--out" => {
                    let _dir = args.next();
                }
                flag if flag.starts_with('-') => unknown.push(a),
                // Bare positionals (e.g. a cargo-bench filter) pass through
                // silently, matching the previous behaviour.
                _ => {}
            }
        }
        (scale, unknown)
    }

    /// Run count to use when the paper would use `full` runs.
    pub fn runs(&self, full: u32) -> Option<u32> {
        match self {
            Scale::Full => {
                if full == 0 {
                    None // defer to the guidance table
                } else {
                    Some(full)
                }
            }
            Scale::Quick => Some((full.max(40) / 4).max(30)),
            Scale::Bench => Some(8),
        }
    }
}

/// Deterministic seed per experiment name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds a fresh default-config simulation for an experiment.
pub fn simulation(name: &str) -> Simulation {
    Simulation::new(SimConfig::default(), seed_for(name)).expect("default configuration is valid")
}

/// Runner configuration for a scale (`None` runs = paper guidance counts).
pub fn runner_config(runs: Option<u32>) -> RunnerConfig {
    RunnerConfig {
        runs_override: runs,
        ..RunnerConfig::default()
    }
}

/// The worker count experiment campaigns shard across (the machine's
/// available parallelism, as sized by the executor itself).
pub fn default_workers() -> usize {
    CampaignExecutor::with_available_parallelism().workers()
}

/// The deterministic default-config backend factory for an experiment:
/// campaign slot `i` draws seed `mix_seed(seed_for(name), i)`.
pub fn campaign_factory(name: &str) -> SimulationFactory {
    SimulationFactory::new(SimConfig::default(), seed_for(name))
}

/// Runs a campaign where slot `i` is seeded `seed_for(&names[i])` directly
/// (the historical one-simulation-per-experiment-name convention), sharded
/// across [`default_workers`]. Regenerated artefacts are bit-identical to
/// the old serial loops; only wall-clock changes.
pub fn named_campaign_report(campaign: &Campaign, names: Vec<String>) -> Vec<KernelPowerReport> {
    assert_eq!(names.len(), campaign.len(), "one seed name per entry");
    let factory = FnBackendFactory(move |i: usize| {
        Simulation::new(SimConfig::default(), seed_for(&names[i]))
            .map_err(|e| fingrav_core::error::MethodologyError::Backend(e.to_string()))
    });
    CampaignExecutor::new(default_workers())
        .run(campaign, &factory)
        .expect("experiment kernels profile cleanly")
        .reports
}

/// Profiles one kernel on a fresh simulation via a single-slot campaign on
/// the executor (seeded exactly as the historical serial helper: the slot
/// uses `seed_for(exp)` directly, so figure data is unchanged).
pub fn profile_kernel(exp: &str, desc: &KernelDesc, runs: Option<u32>) -> KernelPowerReport {
    let mut campaign = Campaign::new(runner_config(runs));
    campaign.add(desc.clone());
    let factory = FnBackendFactory(move |_| {
        Simulation::new(SimConfig::default(), seed_for(exp))
            .map_err(|e| fingrav_core::error::MethodologyError::Backend(e.to_string()))
    });
    let mut report = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("profiling a suite kernel succeeds");
    report.reports.pop().expect("one kernel, one report")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_core::runner::FingravRunner;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(vec![]), Scale::Full);
        assert_eq!(Scale::from_args(vec!["--quick".into()]), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--bench".into()]), Scale::Bench);
        assert_eq!(Scale::from_args(vec!["--full".into()]), Scale::Full);
        assert_eq!(
            Scale::from_args(vec!["--out".into(), "x".into()]),
            Scale::Full
        );
    }

    #[test]
    fn explicit_full_overrides_an_earlier_scale_flag() {
        assert_eq!(
            Scale::parse_args(vec!["--quick".into(), "--full".into()]).0,
            Scale::Full
        );
    }

    #[test]
    fn unknown_flags_are_surfaced_not_swallowed() {
        let (scale, unknown) = Scale::parse_args(vec![
            "--quick".into(),
            "--frobnicate".into(),
            "--out".into(),
            "results".into(),
            "-x".into(),
        ]);
        assert_eq!(scale, Scale::Quick);
        assert_eq!(unknown, vec!["--frobnicate".to_string(), "-x".to_string()]);
    }

    #[test]
    fn out_value_is_not_mistaken_for_a_flag() {
        // `--out --weird-dir-name` must consume the value, not report it.
        let (_, unknown) = Scale::parse_args(vec!["--out".into(), "--weird".into()]);
        assert!(unknown.is_empty());
    }

    #[test]
    fn scale_run_counts() {
        assert_eq!(Scale::Full.runs(200), Some(200));
        assert_eq!(Scale::Full.runs(0), None);
        assert_eq!(Scale::Quick.runs(400), Some(100));
        assert_eq!(Scale::Quick.runs(40), Some(30));
        assert_eq!(Scale::Bench.runs(400), Some(8));
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("fig5"), seed_for("fig6"));
        assert_eq!(seed_for("fig5"), seed_for("fig5"));
    }

    #[test]
    fn profile_kernel_preserves_historical_seeding() {
        // The executor-backed helper must reproduce the old direct-runner
        // path exactly, or every figure would silently change.
        let machine = SimConfig::default().machine.clone();
        let desc = fingrav_workloads::suite::cb_gemm(&machine, 2048);
        let via_helper = profile_kernel("seed-compat", &desc, Some(8));
        let mut sim = simulation("seed-compat");
        let mut runner = FingravRunner::new(&mut sim, runner_config(Some(8)));
        let direct = runner.profile(&desc).expect("profiles");
        assert_eq!(via_helper, direct);
    }
}
