//! Experiment-harness plumbing: scales, seeds, simulation construction,
//! and campaign execution over the parallel executor (with live progress
//! on stderr).

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fingrav_core::backend::{FnBackendFactory, SimulationFactory};
use fingrav_core::campaign::Campaign;
use fingrav_core::checkpoint::campaign_digest;
use fingrav_core::executor::{CampaignExecutor, CampaignObserver, CampaignTally};
use fingrav_core::runner::{KernelPowerReport, RunnerConfig};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::kernel::KernelDesc;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-guided run counts (Table I: 200–400 runs per kernel).
    Full,
    /// Reduced run counts for quick regeneration and CI.
    Quick,
    /// Minimal run counts for Criterion micro-benchmarks.
    Bench,
}

/// Everything the shared experiment argv grammar understands:
/// `--quick|--full|--bench`, `--out DIR`, `--workers N`,
/// `--checkpoint-dir DIR`, `--resume`, `--serve ADDR`, `--connect ADDR`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The compute scale (last scale flag wins).
    pub scale: Scale,
    /// Explicit campaign worker count (`--workers N`), if given.
    pub workers: Option<usize>,
    /// Root directory campaigns checkpoint into (`--checkpoint-dir DIR`),
    /// if given.
    pub checkpoint_dir: Option<PathBuf>,
    /// Whether to resume existing checkpoints instead of re-running
    /// (`--resume`; only meaningful with `--checkpoint-dir`).
    pub resume: bool,
    /// Coordinator address campaigns are served on (`--serve ADDR`):
    /// every harness campaign is measured by remote workers instead of
    /// local threads.
    pub serve: Option<String>,
    /// Coordinator address this process works for (`--connect ADDR`):
    /// every harness campaign runs as a transport worker of the sibling
    /// `--serve` process, then downloads the finished reports so the
    /// rendered artefacts are byte-identical on both nodes.
    pub connect: Option<String>,
    /// Flags the grammar did not recognize.
    pub unknown: Vec<String>,
}

impl ParsedArgs {
    /// Parses the shared experiment argv grammar without side effects.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> ParsedArgs {
        let mut parsed = ParsedArgs {
            scale: Scale::Full,
            workers: None,
            checkpoint_dir: None,
            resume: false,
            serve: None,
            connect: None,
            unknown: Vec::new(),
        };
        let mut args = args.into_iter().peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => parsed.scale = Scale::Quick,
                "--full" => parsed.scale = Scale::Full,
                "--bench" => parsed.scale = Scale::Bench,
                "--resume" => parsed.resume = true,
                "--out" => {
                    let _dir = args.next();
                }
                // Peek before consuming the value: `--workers --bench`
                // must not swallow the sibling flag.
                "--workers" => match args
                    .peek()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                {
                    Some(n) => {
                        parsed.workers = Some(n);
                        args.next();
                    }
                    None => parsed.unknown.push("--workers".into()),
                },
                // A directory value may legitimately start with a dash, so
                // (like `--out`) the value is consumed unconditionally —
                // but a missing value is surfaced.
                "--checkpoint-dir" => match args.next() {
                    Some(dir) => parsed.checkpoint_dir = Some(PathBuf::from(dir)),
                    None => parsed.unknown.push("--checkpoint-dir".into()),
                },
                "--serve" => match args.next() {
                    Some(addr) => parsed.serve = Some(addr),
                    None => parsed.unknown.push("--serve".into()),
                },
                "--connect" => match args.next() {
                    Some(addr) => parsed.connect = Some(addr),
                    None => parsed.unknown.push("--connect".into()),
                },
                flag if flag.starts_with('-') => parsed.unknown.push(a),
                // Bare positionals (e.g. a cargo-bench filter) pass through
                // silently, matching the previous behaviour.
                _ => {}
            }
        }
        parsed
    }
}

/// Campaign worker-count override set by `--workers N` (0 = automatic).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Checkpoint root set by `--checkpoint-dir DIR` (None = not durable).
static CHECKPOINT_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);
/// `--resume` flag: load existing checkpoints instead of re-measuring.
static RESUME_OVERRIDE: AtomicBool = AtomicBool::new(false);
/// Coordinator address set by `--serve ADDR` (None = local execution).
static SERVE_OVERRIDE: Mutex<Option<String>> = Mutex::new(None);
/// Coordinator address set by `--connect ADDR` (None = local execution).
static CONNECT_OVERRIDE: Mutex<Option<String>> = Mutex::new(None);
/// Per-process campaign ordinal: every `named_campaign_report` call gets
/// the next position, and because the `--serve` and `--connect` processes
/// run the same binary with the same flags, both sides count campaigns
/// identically — which is what lets the transport handshake distinguish
/// "coordinator still draining the previous campaign" from "coordinator
/// already restored this campaign from a checkpoint".
static CAMPAIGN_SEQUENCE: AtomicUsize = AtomicUsize::new(0);
/// The one persistent campaign service a `--serve` process hosts every
/// campaign on, started at the first serve. One listener for the whole
/// process (rebinding the fixed address per campaign could
/// intermittently fail with `EADDRINUSE` while the previous campaign's
/// closed connections sit in TIME_WAIT), one service thread draining
/// submissions in campaign-ordinal order.
static SERVE_SERVICE: Mutex<Option<fingrav_core::transport::CampaignService>> = Mutex::new(None);
/// Whether this `--connect` process has completed at least one campaign
/// over the wire. Once it has, a refused connection means the serving
/// process exited (its listener lives for the process lifetime), so
/// later campaigns fall back to local measurement after a short grace
/// instead of burning the full first-contact window.
static WIRE_CONTACTED: AtomicBool = AtomicBool::new(false);

/// Overrides the worker count every harness campaign shards across
/// (`None` restores the automatic available-parallelism sizing). Set by
/// [`Scale::from_args`] when the binary received `--workers N`.
pub fn set_workers(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// The `--workers` override currently in effect, if any.
pub fn worker_override() -> Option<usize> {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Makes every harness campaign durable: each campaign checkpoints into a
/// digest-keyed subdirectory of `root` (`None` turns checkpointing back
/// off), and `resume` selects whether existing complete checkpoints are
/// loaded instead of re-measured. Set by [`Scale::from_args`] when the
/// binary received `--checkpoint-dir DIR` / `--resume`.
pub fn set_checkpointing(root: Option<PathBuf>, resume: bool) {
    *CHECKPOINT_OVERRIDE.lock().expect("checkpoint override") = root;
    RESUME_OVERRIDE.store(resume, Ordering::Relaxed);
}

/// The `--checkpoint-dir` root currently in effect, if any.
pub fn checkpoint_override() -> Option<PathBuf> {
    CHECKPOINT_OVERRIDE
        .lock()
        .expect("checkpoint override")
        .clone()
}

/// Whether `--resume` is in effect.
pub fn resume_override() -> bool {
    RESUME_OVERRIDE.load(Ordering::Relaxed)
}

/// Switches every harness campaign onto the cross-node transport
/// (`None`/`None` restores local execution): with `serve` set, campaigns
/// are coordinated on that address and measured by remote workers; with
/// `connect` set, this process works for (and then downloads results
/// from) the coordinator there. Set by [`Scale::from_args`] when the
/// binary received `--serve ADDR` / `--connect ADDR`.
pub fn set_transport(serve: Option<String>, connect: Option<String>) {
    *SERVE_OVERRIDE.lock().expect("serve override") = serve;
    *CONNECT_OVERRIDE.lock().expect("connect override") = connect;
}

/// The `--serve` address currently in effect, if any.
pub fn serve_override() -> Option<String> {
    SERVE_OVERRIDE.lock().expect("serve override").clone()
}

/// The `--connect` address currently in effect, if any.
pub fn connect_override() -> Option<String> {
    CONNECT_OVERRIDE.lock().expect("connect override").clone()
}

impl Scale {
    /// Parses the shared experiment argv (`--quick`/`--full`/`--bench`,
    /// `--out DIR`, `--workers N`); defaults to `Full`. A `--workers N`
    /// flag is applied process-wide via [`set_workers`], so every campaign
    /// the binary runs shards across exactly `N` workers (results are
    /// bit-identical for any worker count; only wall-clock changes).
    /// Unrecognized flags are surfaced on stderr.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
        let parsed = ParsedArgs::parse(args);
        for flag in &parsed.unknown {
            eprintln!(
                "warning: unrecognized flag `{flag}` \
                 (expected --quick, --full, --bench, --workers N, --out DIR, \
                  --checkpoint-dir DIR, --resume, --serve ADDR, or --connect ADDR)"
            );
        }
        if parsed.serve.is_some() && parsed.connect.is_some() {
            eprintln!("warning: --serve and --connect are mutually exclusive; ignoring both");
            set_transport(None, None);
        } else {
            set_transport(parsed.serve.clone(), parsed.connect.clone());
        }
        set_workers(parsed.workers);
        set_checkpointing(parsed.checkpoint_dir.clone(), parsed.resume);
        parsed.scale
    }

    /// Like [`Scale::from_args`], returning the unrecognized flags instead
    /// of printing them and without applying the worker override. The last
    /// scale flag wins when several are given.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> (Scale, Vec<String>) {
        let parsed = ParsedArgs::parse(args);
        (parsed.scale, parsed.unknown)
    }

    /// Run count to use when the paper would use `full` runs.
    pub fn runs(&self, full: u32) -> Option<u32> {
        match self {
            Scale::Full => {
                if full == 0 {
                    None // defer to the guidance table
                } else {
                    Some(full)
                }
            }
            Scale::Quick => Some((full.max(40) / 4).max(30)),
            Scale::Bench => Some(8),
        }
    }
}

/// Deterministic seed per experiment name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds a fresh default-config simulation for an experiment.
pub fn simulation(name: &str) -> Simulation {
    Simulation::new(SimConfig::default(), seed_for(name)).expect("default configuration is valid")
}

/// Runner configuration for a scale (`None` runs = paper guidance counts).
pub fn runner_config(runs: Option<u32>) -> RunnerConfig {
    RunnerConfig {
        runs_override: runs,
        ..RunnerConfig::default()
    }
}

/// The worker count experiment campaigns shard across: the `--workers N`
/// override when one was parsed, otherwise the machine's available
/// parallelism (as sized by the executor itself).
pub fn default_workers() -> usize {
    worker_override().unwrap_or_else(|| CampaignExecutor::with_available_parallelism().workers())
}

/// Live campaign progress on stderr: one line per finished (or failed)
/// entry, with the slot's emitted-log and completed-launch counts drawn
/// from a [`CampaignTally`]. Streaming means the line appears the moment
/// the entry finishes — long campaigns are observable while they run, and
/// because only stderr is written, regenerated artefacts stay
/// byte-identical.
pub struct CampaignProgress {
    tally: CampaignTally,
    total: usize,
    started: Instant,
}

impl CampaignProgress {
    /// Creates a progress observer for a campaign of `total` entries.
    pub fn new(total: usize) -> Self {
        CampaignProgress {
            tally: CampaignTally::new(total),
            total,
            started: Instant::now(),
        }
    }

    /// The underlying live counters.
    pub fn tally(&self) -> &CampaignTally {
        &self.tally
    }
}

impl CampaignObserver for CampaignProgress {
    fn entry_event(&self, index: usize, event: &fingrav_core::observe::ProfilingEvent) {
        self.tally.entry_event(index, event);
    }

    fn entry_engine_stats(&self, index: usize, stats: fingrav_sim::engine::EngineStats) {
        self.tally.entry_engine_stats(index, stats);
    }

    fn entry_finished(&self, index: usize, report: &KernelPowerReport) {
        self.tally.entry_finished(index, report);
        // Engine stats arrive just before `entry_finished`, so the tally
        // already includes this entry's counters; the rate is campaign
        // events over campaign wall-clock (all workers combined).
        let elapsed = self.started.elapsed().as_secs_f64();
        let events = self.tally.engine_events();
        eprintln!(
            "  [{}/{}] {} done in {elapsed:.1}s: {} logs, {} launches, {} SSP LOIs, \
             {:.1}M engine events ({:.1}M/s)",
            self.tally.finished(),
            self.total,
            report.label,
            self.tally.logs(index),
            self.tally.launches(index),
            report.ssp_loi_count(),
            events as f64 / 1e6,
            events as f64 / 1e6 / elapsed.max(1e-9),
        );
    }

    fn entry_failed(&self, index: usize, error: &fingrav_core::error::MethodologyError) {
        eprintln!("  [slot {index}] FAILED: {error}");
    }
}

/// The deterministic default-config backend factory for an experiment:
/// campaign slot `i` draws seed `mix_seed(seed_for(name), i)`.
pub fn campaign_factory(name: &str) -> SimulationFactory {
    SimulationFactory::new(SimConfig::default(), seed_for(name))
}

/// The checkpoint subdirectory a harness campaign lives under: a readable
/// head (the first seed name) plus a hash of the campaign digest *and* the
/// seed names, so distinct campaigns (or the same kernels under different
/// seeding) never share a checkpoint.
fn checkpoint_key(names: &[String], campaign: &Campaign) -> String {
    let head: String = names
        .first()
        .map(String::as_str)
        .unwrap_or("campaign")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let tag = campaign_digest(campaign) ^ seed_for(&names.join("\n"));
    format!("{head}-{tag:016x}")
}

/// Runs a campaign where slot `i` is seeded `seed_for(&names[i])` directly
/// (the historical one-simulation-per-experiment-name convention), sharded
/// across [`default_workers`]. Regenerated artefacts are bit-identical to
/// the old serial loops; only wall-clock changes.
///
/// When a `--checkpoint-dir` is in effect the campaign is durable: it
/// checkpoints into a digest-keyed subdirectory as it runs, and with
/// `--resume` an existing checkpoint is completed (or, if already
/// complete, simply loaded) instead of re-measured — artefacts stay
/// byte-identical either way.
///
/// When `--serve ADDR` / `--connect ADDR` is in effect the campaign is
/// *distributed* instead: the serving process coordinates it over the
/// [`fingrav_core::transport`] protocol while connecting processes
/// measure the entries and then download the finished reports — both
/// sides render byte-identical artefacts because every entry derives
/// solely from its campaign index and seed name.
pub fn named_campaign_report(campaign: &Campaign, names: Vec<String>) -> Vec<KernelPowerReport> {
    assert_eq!(names.len(), campaign.len(), "one seed name per entry");
    let key = checkpoint_key(&names, campaign);
    let factory = FnBackendFactory(move |i: usize| {
        Simulation::new(SimConfig::default(), seed_for(&names[i]))
            .map_err(|e| fingrav_core::error::MethodologyError::Backend(e.to_string()))
    });
    let progress = std::sync::Arc::new(CampaignProgress::new(campaign.len()));
    let cancel = fingrav_core::executor::CancellationToken::new();
    let sequence = CAMPAIGN_SEQUENCE.fetch_add(1, Ordering::SeqCst) as u64;

    if let Some(addr) = connect_override() {
        // Worker mode: measure whatever the coordinator assigns, then
        // fetch the complete report set so rendering proceeds unchanged.
        let local_fallback = |why: &str| {
            eprintln!("  campaign #{sequence}: {why}; measuring locally");
            CampaignExecutor::new(default_workers())
                .execute_observed(campaign, &factory, &*progress, &cancel)
                .into_report()
                .expect("experiment kernels profile cleanly")
                .reports
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
        // Transport faults get their own retry budget, counted per fault
        // streak rather than from campaign start: a long-running campaign
        // must not lose its right to reconnect just because the fault
        // arrived late.
        let mut fault_retries = 0u32;
        loop {
            // First contact gets a generous window (the serving process
            // may not have started); once the wire has worked, a refusal
            // means the serving process exited, so give up quickly.
            let patience = if WIRE_CONTACTED.load(Ordering::Relaxed) {
                std::time::Duration::from_secs(5)
            } else {
                std::time::Duration::from_secs(120)
            };
            let stream = match fingrav_core::transport::connect_with_retry(addr.as_str(), patience)
            {
                Ok(stream) => stream,
                // The serving process can legitimately be gone already:
                // its final campaigns may all have restored from
                // checkpoints. Local measurement is byte-identical.
                Err(e) => return local_fallback(&format!("coordinator unreachable ({e})")),
            };
            match fingrav_core::transport::work(
                stream,
                campaign,
                &factory,
                &*progress,
                &cancel,
                &fingrav_core::transport::WorkerOptions {
                    max_entries: None,
                    fetch_reports: true,
                    sequence,
                    ..Default::default()
                },
            ) {
                Ok(summary) => {
                    WIRE_CONTACTED.store(true, Ordering::Relaxed);
                    if summary.aborted {
                        panic!(
                            "campaign #{sequence}: the coordinator cancelled the campaign \
                             (see the --serve process's log)"
                        );
                    }
                    match summary.reports {
                        Some(reports) => return reports,
                        // complete=false: a kernel genuinely failed on
                        // some worker or persistence broke — mirror the
                        // local path's loud failure rather than hiding
                        // the cause behind an invariant message.
                        None => panic!(
                            "campaign #{sequence} failed on the coordinator \
                             (campaign_complete = {}; see the --serve process's log)",
                            summary.campaign_complete
                        ),
                    }
                }
                // The coordinator restored this campaign from a complete
                // checkpoint and moved on; measuring locally yields
                // byte-identical reports (every slot derives solely from
                // its index and seed name) and keeps the two processes'
                // campaign sequences aligned.
                Err(fingrav_core::transport::TransportError::Denied { code, detail })
                    if code == fingrav_core::transport::DENY_SEQUENCE_PASSED =>
                {
                    return local_fallback(&detail);
                }
                // The previous campaign's listener is still draining on
                // this address; reconnect until ours comes up.
                Err(fingrav_core::transport::TransportError::Denied { code, detail })
                    if code == fingrav_core::transport::DENY_SEQUENCE_EARLY =>
                {
                    if std::time::Instant::now() >= deadline {
                        panic!("coordinator never reached campaign #{sequence}: {detail}");
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                // A same-sequence digest mismatch means the two processes
                // run different campaign definitions (skewed binaries or
                // flags) — rendering silently diverging artifact trees
                // would be worse than failing loudly.
                Err(e @ fingrav_core::transport::TransportError::DigestMismatch { .. }) => {
                    panic!("serve/connect campaign definitions disagree: {e}")
                }
                Err(fingrav_core::transport::TransportError::Denied { code, detail })
                    if code == fingrav_core::transport::DENY_DIGEST_MISMATCH =>
                {
                    panic!("serve/connect campaign definitions disagree: {detail}")
                }
                // Anything else — a dropped connection, an unexpected
                // frame — first tries to reconnect and resume (the
                // coordinator re-plans the dropped entries, so a fresh
                // connection picks the campaign back up); a persistent
                // fault streak falls back to local measurement, which
                // yields the same bytes and always makes progress.
                Err(e) => {
                    fault_retries += 1;
                    if fault_retries > 20 {
                        return local_fallback(&format!("transport fault ({e})"));
                    }
                    eprintln!("  campaign #{sequence}: transport fault ({e}); reconnecting");
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
            }
        }
    }
    if let Some(addr) = serve_override() {
        // Coordinator mode: remote workers measure; persistence lands in
        // the usual digest-keyed checkpoint layout so `--resume` (or a
        // plain executor resume) completes an interrupted serve. Without
        // an explicit `--checkpoint-dir` the checkpoints go to a
        // pid-keyed temp root: scoping to this invocation keeps the
        // within-run duplicate-campaign short-circuit while making sure
        // a later run (possibly of a different build) never restores
        // this run's artifacts. The root is left behind for post-mortems
        // (it is what `--resume` would complete) and is small at bench
        // scale; full-scale serves should pass `--checkpoint-dir`.
        let root = checkpoint_override().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("fingrav-serve-{}", std::process::id()))
        });
        let dir = root.join(&key);
        // Mirror the local path's `--resume` semantics: without the flag
        // an existing checkpoint at this key is discarded and the
        // campaign is measured afresh by the workers, instead of
        // Coordinator::serve silently restoring a previous (possibly
        // different-build) run's artifacts.
        if !resume_override() && dir.exists() {
            std::fs::remove_dir_all(&dir).expect("stale serve checkpoint removes");
        }
        // One persistent campaign service hosts every campaign of this
        // process (started at the first serve); each campaign is one
        // submission. The bind itself retries: a previous process on
        // this address (an earlier child of `all --serve`) leaves
        // TIME_WAIT connections that can hold the port for up to a
        // minute.
        let ticket = {
            let mut slot = SERVE_SERVICE.lock().expect("serve service");
            let service = slot.get_or_insert_with(|| {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
                let listener = loop {
                    match std::net::TcpListener::bind(addr.as_str()) {
                        Ok(listener) => break listener,
                        Err(e) if std::time::Instant::now() < deadline => {
                            eprintln!("  waiting to bind {addr}: {e}");
                            std::thread::sleep(std::time::Duration::from_millis(250));
                        }
                        Err(e) => panic!("coordinator address {addr} never bound: {e}"),
                    }
                };
                fingrav_core::transport::CampaignService::from_listener(
                    listener,
                    fingrav_core::transport::ServiceConfig::default(),
                )
            });
            service.submit_with(
                campaign.clone(),
                dir.clone(),
                Default::default(),
                Some(progress.clone()),
            )
        };
        // Both processes count campaigns identically and this process
        // submits each exactly once, so the service-assigned wire
        // sequence must track the campaign ordinal.
        assert_eq!(
            ticket.sequence(),
            sequence,
            "service submission order diverged from the campaign ordinal"
        );
        // Wait with a no-progress watchdog: the ticket resolves only
        // once workers finish the campaign, so a connect process that
        // died (or gave up and measured locally) would otherwise hang
        // this process forever. Five minutes with zero finished entries
        // is a wedged run, not a slow one — cancel and fail loudly.
        // Progress is any live signal — finished entries OR the
        // per-slot log/launch counters the workers stream — so a
        // single legitimately slow entry on a healthy worker never
        // trips the watchdog.
        let observed = || {
            let tally = progress.tally();
            (0..campaign.len())
                .map(|i| tally.logs(i) + tally.launches(i))
                .sum::<u64>()
                + tally.finished() as u64
        };
        let mut last = observed();
        let mut stalled_for = std::time::Duration::ZERO;
        let tick = std::time::Duration::from_millis(500);
        let watchdog_fired = loop {
            if ticket.phase() == fingrav_core::transport::CampaignPhase::Done {
                break false;
            }
            std::thread::sleep(tick);
            let now = observed();
            if now != last {
                last = now;
                stalled_for = std::time::Duration::ZERO;
            } else {
                stalled_for += tick;
                if stalled_for >= std::time::Duration::from_secs(300) {
                    eprintln!(
                        "  campaign #{sequence}: no worker progress for \
                         {}s; cancelling the serve",
                        stalled_for.as_secs()
                    );
                    ticket.cancel();
                    break true;
                }
            }
        };
        let outcome = ticket.wait().expect("served campaign persists cleanly");
        if watchdog_fired {
            panic!(
                "campaign #{sequence}: no worker made progress within the watchdog \
                 window — is the --connect process running and pointed at this address?"
            );
        }
        return outcome
            .into_report()
            .expect("experiment kernels profile cleanly")
            .reports;
    }

    let executor = CampaignExecutor::new(default_workers());
    let outcome = match checkpoint_override() {
        Some(root) => {
            let dir = root.join(key);
            let manifest = dir.join(fingrav_core::checkpoint::MANIFEST_FILE);
            if resume_override() && manifest.is_file() {
                executor.resume_observed(campaign, &factory, &dir, &*progress, &cancel)
            } else {
                executor.execute_sharded_observed(campaign, &factory, &dir, &*progress, &cancel)
            }
            .expect("campaign checkpoint is writable and consistent")
        }
        None => executor.execute_observed(campaign, &factory, &*progress, &cancel),
    };
    outcome
        .into_report()
        .expect("experiment kernels profile cleanly")
        .reports
}

/// Profiles one kernel on a fresh simulation via a single-slot campaign on
/// the executor (seeded exactly as the historical serial helper: the slot
/// uses `seed_for(exp)` directly, so figure data is unchanged).
pub fn profile_kernel(exp: &str, desc: &KernelDesc, runs: Option<u32>) -> KernelPowerReport {
    let mut campaign = Campaign::new(runner_config(runs));
    campaign.add(desc.clone());
    let factory = FnBackendFactory(move |_| {
        Simulation::new(SimConfig::default(), seed_for(exp))
            .map_err(|e| fingrav_core::error::MethodologyError::Backend(e.to_string()))
    });
    let mut report = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("profiling a suite kernel succeeds");
    report.reports.pop().expect("one kernel, one report")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_core::runner::FingravRunner;

    /// Serializes tests that touch the process-wide worker override.
    static WORKERS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn scale_parsing() {
        let _guard = WORKERS_GUARD.lock().unwrap();
        assert_eq!(Scale::from_args(vec![]), Scale::Full);
        assert_eq!(Scale::from_args(vec!["--quick".into()]), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--bench".into()]), Scale::Bench);
        assert_eq!(Scale::from_args(vec!["--full".into()]), Scale::Full);
        assert_eq!(
            Scale::from_args(vec!["--out".into(), "x".into()]),
            Scale::Full
        );
    }

    #[test]
    fn workers_flag_parses_without_side_effects() {
        let parsed = ParsedArgs::parse(vec!["--workers".into(), "3".into(), "--bench".into()]);
        assert_eq!(parsed.workers, Some(3));
        assert_eq!(parsed.scale, Scale::Bench);
        assert!(parsed.unknown.is_empty());
        // A missing or non-positive value is surfaced, not silently eaten.
        let parsed = ParsedArgs::parse(vec!["--workers".into(), "zero".into()]);
        assert_eq!(parsed.workers, None);
        assert_eq!(parsed.unknown, vec!["--workers".to_string()]);
        let parsed = ParsedArgs::parse(vec!["--workers".into(), "0".into()]);
        assert_eq!(parsed.workers, None);
        assert!(!parsed.unknown.is_empty());
        // A malformed value never swallows a sibling flag.
        let parsed = ParsedArgs::parse(vec!["--workers".into(), "--bench".into()]);
        assert_eq!(parsed.workers, None);
        assert_eq!(parsed.scale, Scale::Bench);
        assert_eq!(parsed.unknown, vec!["--workers".to_string()]);
    }

    #[test]
    fn transport_flags_parse_without_side_effects() {
        let parsed = ParsedArgs::parse(vec![
            "--serve".into(),
            "0.0.0.0:7000".into(),
            "--bench".into(),
        ]);
        assert_eq!(parsed.serve.as_deref(), Some("0.0.0.0:7000"));
        assert_eq!(parsed.connect, None);
        assert_eq!(parsed.scale, Scale::Bench);
        assert!(parsed.unknown.is_empty());

        let parsed = ParsedArgs::parse(vec!["--connect".into(), "10.0.0.2:7000".into()]);
        assert_eq!(parsed.connect.as_deref(), Some("10.0.0.2:7000"));
        assert_eq!(parsed.serve, None);

        // A missing address is surfaced, not silently eaten.
        let parsed = ParsedArgs::parse(vec!["--serve".into()]);
        assert_eq!(parsed.serve, None);
        assert_eq!(parsed.unknown, vec!["--serve".to_string()]);
        let parsed = ParsedArgs::parse(vec!["--connect".into()]);
        assert_eq!(parsed.connect, None);
        assert_eq!(parsed.unknown, vec!["--connect".to_string()]);
    }

    #[test]
    fn workers_flag_overrides_campaign_sharding() {
        let _guard = WORKERS_GUARD.lock().unwrap();
        assert_eq!(
            Scale::from_args(vec!["--workers".into(), "2".into()]),
            Scale::Full
        );
        assert_eq!(worker_override(), Some(2));
        assert_eq!(default_workers(), 2);
        set_workers(None);
        assert_eq!(worker_override(), None);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn explicit_full_overrides_an_earlier_scale_flag() {
        assert_eq!(
            Scale::parse_args(vec!["--quick".into(), "--full".into()]).0,
            Scale::Full
        );
    }

    #[test]
    fn unknown_flags_are_surfaced_not_swallowed() {
        let (scale, unknown) = Scale::parse_args(vec![
            "--quick".into(),
            "--frobnicate".into(),
            "--out".into(),
            "results".into(),
            "-x".into(),
        ]);
        assert_eq!(scale, Scale::Quick);
        assert_eq!(unknown, vec!["--frobnicate".to_string(), "-x".to_string()]);
    }

    #[test]
    fn out_value_is_not_mistaken_for_a_flag() {
        // `--out --weird-dir-name` must consume the value, not report it.
        let (_, unknown) = Scale::parse_args(vec!["--out".into(), "--weird".into()]);
        assert!(unknown.is_empty());
    }

    #[test]
    fn scale_run_counts() {
        assert_eq!(Scale::Full.runs(200), Some(200));
        assert_eq!(Scale::Full.runs(0), None);
        assert_eq!(Scale::Quick.runs(400), Some(100));
        assert_eq!(Scale::Quick.runs(40), Some(30));
        assert_eq!(Scale::Bench.runs(400), Some(8));
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_for("fig5"), seed_for("fig6"));
        assert_eq!(seed_for("fig5"), seed_for("fig5"));
    }

    #[test]
    fn profile_kernel_preserves_historical_seeding() {
        // The executor-backed helper must reproduce the old direct-runner
        // path exactly, or every figure would silently change.
        let machine = SimConfig::default().machine.clone();
        let desc = fingrav_workloads::suite::cb_gemm(&machine, 2048);
        let via_helper = profile_kernel("seed-compat", &desc, Some(8));
        let mut sim = simulation("seed-compat");
        let mut runner = FingravRunner::new(&mut sim, runner_config(Some(8)));
        let direct = runner.profile(&desc).expect("profiles");
        assert_eq!(via_helper, direct);
    }
}
