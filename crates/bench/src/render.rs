//! Rendering of experiment outputs: stdout tables and CSV artefacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fingrav_core::profile::{PowerProfile, ProfileAxis};
use fingrav_core::report::profile_to_csv;
use fingrav_core::runner::KernelPowerReport;

use crate::experiments::{ComponentRow, RunShape};

/// Resolves the output directory (`--out DIR`, default `results/`) and
/// creates it.
///
/// # Errors
///
/// Propagates directory-creation failures.
pub fn out_dir<I: IntoIterator<Item = String>>(args: I) -> io::Result<PathBuf> {
    let mut args: Vec<String> = args.into_iter().collect();
    let mut dir = PathBuf::from("results");
    for i in 0..args.len() {
        if args[i] == "--out" && i + 1 < args.len() {
            dir = PathBuf::from(std::mem::take(&mut args[i + 1]));
            break;
        }
    }
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a profile CSV under `dir/name`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_profile(
    dir: &Path,
    name: &str,
    profile: &PowerProfile,
    axis: ProfileAxis,
) -> io::Result<PathBuf> {
    let path = dir.join(name);
    fs::write(&path, profile_to_csv(profile, axis))?;
    Ok(path)
}

/// Writes a run-shape CSV (`x_ms,total_w,xcd_w,iod_w,hbm_w`) under
/// `dir/name` and returns the path.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_run_rows(
    dir: &Path,
    name: &str,
    rows: &[(f64, f64, f64, f64, f64)],
) -> io::Result<PathBuf> {
    let mut csv = String::from("x_ms,total_w,xcd_w,iod_w,hbm_w\n");
    for (x, t, xc, io_, hb) in rows {
        csv.push_str(&format!("{x:.4},{t:.2},{xc:.2},{io_:.2},{hb:.2}\n"));
    }
    let path = dir.join(name);
    fs::write(&path, csv)?;
    Ok(path)
}

/// Renders component rows as a relative-power markdown table (the Fig. 7 /
/// Fig. 10 presentation: everything normalized to the hottest kernel).
pub fn component_table(rows: &[ComponentRow], reference_w: f64) -> String {
    let mut out = String::from(
        "| kernel | rel total | rel XCD | rel IOD | rel HBM | util |\n|---|---|---|---|---|---|\n",
    );
    for r in rows {
        let rel = r.relative(reference_w);
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.label,
            rel.total(),
            rel.xcd,
            rel.iod,
            rel.hbm,
            r.utilization
        ));
    }
    out
}

/// Renders a run shape as a one-line summary.
pub fn shape_summary(label: &str, s: &RunShape) -> String {
    format!(
        "{label}: early {:.0} W -> peak {:.0} W -> trough {:.0} W -> plateau {:.0} W \
         | SSE {} W, SSP {} W, err {}",
        s.early_w,
        s.peak_w,
        s.trough_after_peak_w,
        s.plateau_w,
        s.report
            .sse_mean_total_w
            .map(|w| format!("{w:.0}"))
            .unwrap_or_else(|| "-".into()),
        s.report
            .ssp_mean_total_w
            .map(|w| format!("{w:.0}"))
            .unwrap_or_else(|| "-".into()),
        s.report
            .sse_vs_ssp_error
            .map(|e| format!("{:.0}%", e * 100.0))
            .unwrap_or_else(|| "-".into()),
    )
}

/// Prints a report's headline numbers.
pub fn print_report_line(r: &KernelPowerReport) {
    println!("{}", fingrav_core::report::report_summary_row(r));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ComponentRow;
    use fingrav_sim::power::ComponentPower;
    use fingrav_workloads::suite::SuiteClass;
    use fingrav_workloads::Boundedness;

    #[test]
    fn out_dir_parses_flag() {
        let dir = std::env::temp_dir().join("fingrav-render-test");
        let got = out_dir(vec!["--out".to_string(), dir.display().to_string()]).unwrap();
        assert_eq!(got, dir);
        assert!(dir.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn component_table_normalizes() {
        let rows = vec![ComponentRow {
            label: "CB-8K-GEMM".into(),
            class: SuiteClass::Gemm(Boundedness::ComputeBound),
            mean: ComponentPower::new(500.0, 100.0, 80.0, 70.0),
            utilization: 0.62,
        }];
        let t = component_table(&rows, 750.0);
        assert!(t.contains("CB-8K-GEMM"));
        assert!(t.contains("1.00")); // total 750/750
    }

    #[test]
    fn write_run_rows_roundtrip() {
        let dir = std::env::temp_dir().join("fingrav-render-rows");
        fs::create_dir_all(&dir).unwrap();
        let p = write_run_rows(&dir, "x.csv", &[(0.5, 100.0, 50.0, 30.0, 20.0)]).unwrap();
        let content = fs::read_to_string(p).unwrap();
        assert!(content.starts_with("x_ms,"));
        assert!(content.contains("0.5000,100.00"));
        fs::remove_dir_all(&dir).ok();
    }
}
