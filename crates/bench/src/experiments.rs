//! The paper's evaluation experiments, one function per table/figure.

use fingrav_baselines::common::BaselineConfig;
use fingrav_baselines::{coarse, unsynchronized};
use fingrav_core::backend::PowerBackend;
use fingrav_core::binning::bin_durations;
use fingrav_core::guidance::GuidanceTable;
use fingrav_core::insights::{InterleaveEffect, ProportionalityPoint};
use fingrav_core::profile::{place_logs, PowerAxis, PowerProfile, ProfileAxis};
use fingrav_core::regression::PolyFit;
use fingrav_core::runner::{FingravRunner, KernelPowerReport, RunnerConfig};
use fingrav_core::stats;
use fingrav_core::sync::{ReadDelayCalibration, TimeSync};
use fingrav_sim::config::MachineConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use fingrav_sim::power::{Activity, Component, ComponentPower};
use fingrav_sim::script::Script;
use fingrav_sim::time::SimDuration;
use fingrav_workloads::suite::{self, SuiteClass};

use crate::harness::{profile_kernel, simulation, Scale};

fn machine() -> MachineConfig {
    MachineConfig::default()
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Empirical validation row for one guidance-table range.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Representative kernel duration probed for this range.
    pub exec_label: String,
    /// Guidance values applied.
    pub runs: u32,
    /// Guidance margin.
    pub margin_frac: f64,
    /// LOI target from the guidance density.
    pub loi_target: u32,
    /// LOIs actually harvested at the guidance run count.
    pub lois_harvested: u32,
    /// Fraction of runs surviving the golden bin.
    pub golden_fraction: f64,
}

/// Table I output: the guidance table plus an empirical yield check per row.
#[derive(Debug, Clone)]
pub struct Table1Data {
    /// The guidance table markdown (the paper's Table I verbatim).
    pub table_markdown: String,
    /// One validation row per guidance range.
    pub rows: Vec<Table1Row>,
}

/// Synthetic kernel of a given steady duration for guidance validation.
fn synthetic_kernel(us: u64) -> KernelDesc {
    KernelDesc {
        name: format!("synthetic-{us}us"),
        base_exec: SimDuration::from_micros(us),
        freq_insensitive_frac: 0.2,
        activity: Activity::new(0.85, 0.5, 0.4),
        compute_utilization: 0.6,
        flops: 1e10,
        hbm_bytes: 1e7,
        llc_bytes: 1e8,
        workgroups: 512,
    }
}

/// Regenerates Table I: prints the guidance and validates each range's LOI
/// yield empirically with a synthetic kernel in that range.
pub fn table1(scale: Scale) -> Table1Data {
    let table = GuidanceTable::paper();
    let mut rows = Vec::new();
    for (us, label) in [
        (30u64, "25-50us"),
        (100, "50-200us"),
        (500, "200us-1ms"),
        (1600, ">1ms"),
    ] {
        let exec = SimDuration::from_micros(us);
        let entry = *table.lookup(exec);
        let runs = match scale {
            Scale::Full => entry.runs,
            Scale::Quick => entry.runs / 4,
            Scale::Bench => 8,
        };
        let mut sim = simulation(&format!("table1-{us}"));
        let mut runner = FingravRunner::new(
            &mut sim,
            RunnerConfig {
                runs_override: Some(runs),
                extra_run_batches: 0,
                ..RunnerConfig::default()
            },
        );
        let report = runner
            .profile(&synthetic_kernel(us))
            .expect("synthetic kernel profiles");
        rows.push(Table1Row {
            exec_label: label.to_string(),
            runs,
            margin_frac: entry.margin_frac,
            loi_target: entry.recommended_lois(SimDuration::from_nanos(report.exec_time_ns)),
            lois_harvested: report.ssp_loi_count() as u32,
            golden_fraction: report.golden_runs as f64 / report.runs_executed.max(1) as f64,
        });
    }
    Table1Data {
        table_markdown: table.as_markdown(),
        rows,
    }
}

// ---------------------------------------------------------------------
// Fig. 3 — challenge demonstrations
// ---------------------------------------------------------------------

/// Measured evidence for each of the paper's four challenges.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// C1: fraction of runs in which a coarse (50 ms) sampler captured no
    /// log at all for a sub-ms kernel.
    pub c1_coarse_miss_rate: f64,
    /// C1: fine-logger logs per run for the same workload.
    pub c1_fine_logs_per_run: f64,
    /// C2: standard deviation (ns) of the placement error a naive
    /// unsynchronized alignment makes, across runs.
    pub c2_naive_placement_error_ns: f64,
    /// C3: relative execution-time spread (p99/median - 1) across repeated
    /// executions.
    pub c3_time_spread: f64,
    /// C3: outlier-execution fraction found by binning.
    pub c3_outlier_fraction: f64,
    /// C4: relative power difference between early and late executions of
    /// an identical kernel within one run (averaging-window effect).
    pub c4_early_late_power_gap: f64,
}

/// Regenerates the challenge demonstrations of Fig. 3.
pub fn fig3(scale: Scale) -> Fig3Data {
    let m = machine();
    let kernel = suite::cb_gemm(&m, 4096);
    let runs = scale.runs(120).unwrap_or(120);

    // C1: coarse sampler vs fine logger.
    let mut sim = simulation("fig3-c1");
    let cfg = BaselineConfig {
        runs: runs.min(60),
        executions_per_run: 12,
        ..BaselineConfig::default()
    };
    let coarse_outcome = coarse::profile(&mut sim, &kernel, &cfg).expect("coarse baseline");
    let mut sim = simulation("fig3-c1-fine");
    let fine = unsynchronized::profile(&mut sim, &kernel, &cfg).expect("fine logs");
    let c1_fine_logs_per_run = fine.len() as f64 / cfg.runs as f64;

    // C2: naive placement error: difference between the naive grid position
    // and the synchronized position of each log.
    let mut sim = simulation("fig3-c2");
    let k = PowerBackend::register_kernel(&mut sim, &kernel).expect("register");
    let mut errors = Vec::new();
    for _ in 0..runs.min(40) {
        let trace =
            fingrav_baselines::common::collect_run(&mut sim, k, &cfg, true, false).expect("run");
        let read = trace.timestamp_reads[0];
        let calib = ReadDelayCalibration {
            median_rtt_ns: read.rtt_ns(),
            assumed_sample_frac: 0.5,
        };
        let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&sim));
        let placed = place_logs(&trace, &sync);
        let period = PowerBackend::logger_window(&sim).as_nanos() as f64;
        for (i, l) in placed.iter().enumerate() {
            let naive = i as f64 * period;
            errors.push(l.run_time_ns - naive);
        }
    }
    let c2 = stats::std_dev(&errors).unwrap_or(0.0);

    // C3: execution-time variation across runs.
    let mut sim = simulation("fig3-c3");
    let k = PowerBackend::register_kernel(&mut sim, &kernel).expect("register");
    let mut durations = Vec::new();
    for _ in 0..runs {
        let script = Script::builder()
            .begin_run()
            .launch_timed(k, 6)
            .sleep(SimDuration::from_millis(8))
            .build();
        let trace = Simulation::run_script(&mut sim, &script).expect("script");
        // Steady executions only (skip warm-ups).
        durations.extend(trace.execution_durations_ns().into_iter().skip(4));
    }
    let fd: Vec<f64> = durations.iter().map(|&d| d as f64).collect();
    let med = stats::median(&fd).unwrap_or(1.0);
    let p99 = stats::quantile(&fd, 0.99).unwrap_or(med);
    let c3_spread = p99 / med - 1.0;
    let binning = bin_durations(&durations, 0.05).expect("non-empty");
    let c3_outliers = binning.outlier_count() as f64 / binning.total_count() as f64;

    // C4: early-vs-late power of identical executions within a burst.
    let mut sim = simulation("fig3-c4");
    let short = suite::cb_gemm(&m, 2048);
    let k = PowerBackend::register_kernel(&mut sim, &short).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .read_gpu_timestamp()
        .launch_timed(k, 60)
        .sleep(SimDuration::from_millis(2))
        .read_gpu_timestamp()
        .stop_power_logger()
        .build();
    let trace = Simulation::run_script(&mut sim, &script).expect("script");
    let read = trace.timestamp_reads[0];
    let calib = ReadDelayCalibration {
        median_rtt_ns: read.rtt_ns(),
        assumed_sample_frac: 0.5,
    };
    let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&sim));
    let placed = place_logs(&trace, &sync);
    let in_exec: Vec<&fingrav_core::profile::PlacedLog> = placed
        .iter()
        .filter(|l| l.containing_exec.is_some())
        .collect();
    let c4 = if in_exec.len() >= 2 {
        let early = in_exec.first().expect("len>=2").power.total();
        let late = in_exec.last().expect("len>=2").power.total();
        (late - early).abs() / late.max(1.0)
    } else {
        0.0
    };

    Fig3Data {
        c1_coarse_miss_rate: coarse_outcome.miss_rate(),
        c1_fine_logs_per_run,
        c2_naive_placement_error_ns: c2,
        c3_time_spread: c3_spread,
        c3_outlier_fraction: c3_outliers,
        c4_early_late_power_gap: c4,
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — methodology evaluation on CB-4K-GEMM
// ---------------------------------------------------------------------

/// Fig. 5 output: the synchronized/binned FinGraV profile against its
/// ablations.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// The full FinGraV report (synchronized, binned).
    pub synced: KernelPowerReport,
    /// The unsynchronized baseline profile (the paper's red curve).
    pub unsynced: PowerProfile,
    /// FinGraV with binning disabled (margin so wide every run is golden).
    pub unbinned: KernelPowerReport,
    /// FinGraV with only 50 runs (resiliency study).
    pub few_runs: KernelPowerReport,
    /// R² of a quartic fit over the synchronized run profile.
    pub synced_r2: f64,
    /// R² of a quartic fit over the unsynchronized profile.
    pub unsynced_r2: f64,
    /// RMS residual around the quartic fit, binned runs only.
    pub binned_rms_w: f64,
    /// RMS residual around the quartic fit, no binning.
    pub unbinned_rms_w: f64,
    /// Maximum relative deviation between the 50-run degree-4 fit and the
    /// full-run fit across the run window.
    pub few_runs_fit_deviation: f64,
    /// The SSE-vs-SSP error (the paper quotes up to 36% for this kernel).
    pub sse_vs_ssp_error: Option<f64>,
}

/// Last run-relative time at which a log landed inside an execution — the
/// end of the busy window. Profile points after it (logger drain) carry
/// idle readings that would corrupt shape statistics. A two-column scan:
/// the validity bitmap gates the run-time column directly.
pub fn busy_end_ns(report: &KernelPowerReport) -> f64 {
    let store = &report.run_profile.store;
    store
        .run_times_ns()
        .iter()
        .enumerate()
        .filter(|&(i, _)| store.in_exec(i))
        .map(|(_, &t)| t)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// A copy of `profile` restricted to run-relative times in `[0, end_ns]`
/// (an index-gathering filter over the columnar store).
fn clip_to_window(profile: &PowerProfile, end_ns: f64) -> PowerProfile {
    let keep = profile
        .store
        .indices_where(|p| p.run_time_ns() >= 0.0 && p.run_time_ns() <= end_ns);
    PowerProfile {
        label: profile.label.clone(),
        kind: profile.kind.clone(),
        store: profile.store.select(&keep),
    }
}

fn r2_of_quartic(profile: &PowerProfile) -> (f64, Option<PolyFit>) {
    let (xs, ys) = profile.series(ProfileAxis::RunTime, PowerAxis::Total);
    if xs.len() < 6 {
        return (0.0, None);
    }
    let Ok(fit) = fingrav_core::regression::degree4(&xs, &ys) else {
        return (0.0, None);
    };
    let mean = stats::mean(&ys).expect("non-empty");
    let tss: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let rss: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(&x, &y)| (fit.eval(x) - y).powi(2))
        .sum();
    if tss <= 0.0 {
        (0.0, Some(fit))
    } else {
        (1.0 - rss / tss, Some(fit))
    }
}

/// Cross-run scatter of a run profile: points are grouped into fixed
/// x-buckets and the per-bucket standard deviation of total power is
/// averaged. Tight profiles (all runs tracing the same shape) score low;
/// profiles contaminated by pathological runs score high.
pub fn bucketed_scatter(profile: &PowerProfile, x_lo: f64, x_hi: f64, bucket_ns: f64) -> f64 {
    let (xs, ys) = profile.series(ProfileAxis::RunTime, PowerAxis::Total);
    let mut buckets: std::collections::BTreeMap<i64, Vec<f64>> = std::collections::BTreeMap::new();
    for (&x, &y) in xs.iter().zip(&ys) {
        if x < x_lo || x > x_hi {
            continue;
        }
        buckets
            .entry(((x - x_lo) / bucket_ns) as i64)
            .or_default()
            .push(y);
    }
    let stds: Vec<f64> = buckets
        .values()
        .filter(|v| v.len() >= 3)
        .filter_map(|v| stats::std_dev(v))
        .collect();
    stats::mean(&stds).unwrap_or(0.0)
}

/// Regenerates Fig. 5.
pub fn fig5(scale: Scale) -> Fig5Data {
    let m = machine();
    let kernel = suite::cb_gemm(&m, 4096);
    let full_runs = scale.runs(200);

    let synced = profile_kernel("fig5-sync", &kernel, full_runs);

    let cfg = BaselineConfig {
        runs: full_runs.unwrap_or(200),
        executions_per_run: synced.executions_per_run,
        ..BaselineConfig::default()
    };
    let mut sim = simulation("fig5-unsync");
    let unsynced = unsynchronized::profile(&mut sim, &kernel, &cfg).expect("unsync baseline");

    let mut sim = simulation("fig5-sync"); // same seed as synced: same device draws
    let mut runner = FingravRunner::new(
        &mut sim,
        RunnerConfig {
            runs_override: full_runs,
            margin_override: Some(10.0), // effectively no binning
            ..RunnerConfig::default()
        },
    );
    let unbinned = runner.profile(&kernel).expect("unbinned profile");

    let few = match scale {
        Scale::Full => 50,
        Scale::Quick => 25,
        Scale::Bench => 6,
    };
    let few_runs = profile_kernel("fig5-few", &kernel, Some(few));

    // All shape statistics are computed over the *common* busy window: the
    // SSP probe is re-run per report, so each report's burst length can
    // legitimately differ (the paper's search is empirical); comparisons
    // must not extrapolate one fit beyond another's support.
    let busy = busy_end_ns(&synced)
        .min(busy_end_ns(&few_runs))
        .min(busy_end_ns(&unbinned))
        * 0.98;
    let synced_busy = clip_to_window(&synced.run_profile, busy);
    let unsynced_busy = clip_to_window(&unsynced, busy);
    let unbinned_busy = clip_to_window(&unbinned.run_profile, busy);
    let few_busy = clip_to_window(&few_runs.run_profile, busy);

    // The sync benefit lives in the warm-up/SSE/SSP ramp structure; a long
    // flat plateau would dilute R² for both variants equally, so the
    // comparison is made over the structured early region.
    let r2_end = busy.min(5.0e6);
    let synced_early = clip_to_window(&synced_busy, r2_end);
    let unsynced_early = clip_to_window(&unsynced_busy, r2_end);
    let (synced_r2, _) = r2_of_quartic(&synced_early);
    let (unsynced_r2, _) = r2_of_quartic(&unsynced_early);

    // Binning benefit: cross-run scatter over the settled half of the run,
    // where a pathological (off-bin) run's depressed power stands out.
    let binned_rms_w = bucketed_scatter(&synced_busy, busy * 0.5, busy, 250e3);
    let unbinned_rms_w = bucketed_scatter(&unbinned_busy, busy * 0.5, busy, 250e3);

    // Resiliency: compare the few-run fit against the full fit over the
    // interior of the common busy window (polynomials extrapolate poorly
    // at the very edges).
    let (_, synced_fit) = r2_of_quartic(&synced_busy);
    let (_, few_fit) = r2_of_quartic(&few_busy);
    let few_runs_fit_deviation = match (&synced_fit, &few_fit) {
        (Some(a), Some(b)) => {
            let lo = busy * 0.10;
            let hi = busy * 0.90;
            a.sample(lo, hi, 64)
                .into_iter()
                .map(|(x, ya)| {
                    let yb = b.eval(x);
                    if ya.abs() < 1.0 {
                        0.0
                    } else {
                        ((ya - yb) / ya).abs()
                    }
                })
                .fold(0.0_f64, f64::max)
        }
        _ => f64::NAN,
    };

    Fig5Data {
        sse_vs_ssp_error: synced.sse_vs_ssp_error,
        synced,
        unsynced,
        unbinned,
        few_runs,
        synced_r2,
        unsynced_r2,
        binned_rms_w,
        unbinned_rms_w,
        few_runs_fit_deviation,
    }
}

// ---------------------------------------------------------------------
// Fig. 6 / Fig. 8 — run-profile shapes
// ---------------------------------------------------------------------

/// Characterization of a run profile's shape over run time.
#[derive(Debug, Clone)]
pub struct RunShape {
    /// The full FinGraV report.
    pub report: KernelPowerReport,
    /// Mean total power over the first 15% of the run window.
    pub early_w: f64,
    /// Peak total power anywhere in the run.
    pub peak_w: f64,
    /// Minimum total power after the peak (the throttle trough).
    pub trough_after_peak_w: f64,
    /// Mean total power over the last 20% of the run window (the SSP
    /// plateau).
    pub plateau_w: f64,
}

fn run_shape(report: KernelPowerReport) -> RunShape {
    // Restrict to the busy window: from the first launch to the last log
    // that landed inside an execution. Logs from the post-burst logger
    // drain would otherwise pollute the trough/plateau statistics with
    // idle readings.
    let busy_end = busy_end_ns(&report);
    let (xs, ys) = report
        .run_profile
        .series(ProfileAxis::RunTime, PowerAxis::Total);
    let pts: Vec<(f64, f64)> = xs
        .into_iter()
        .zip(ys)
        .filter(|&(x, _)| x >= 0.0 && x <= busy_end)
        .collect();
    if pts.is_empty() {
        return RunShape {
            report,
            early_w: 0.0,
            peak_w: 0.0,
            trough_after_peak_w: 0.0,
            plateau_w: 0.0,
        };
    }
    let span = pts.last().expect("non-empty").0 - pts[0].0;
    let x0 = pts[0].0;
    let early: Vec<f64> = pts
        .iter()
        .filter(|&&(x, _)| x <= x0 + span * 0.15)
        .map(|&(_, y)| y)
        .collect();
    let late: Vec<f64> = pts
        .iter()
        .filter(|&&(x, _)| x >= x0 + span * 0.80)
        .map(|&(_, y)| y)
        .collect();
    let peak_idx = pts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let peak_w = pts[peak_idx].1;
    let trough = pts[peak_idx..]
        .iter()
        .map(|&(_, y)| y)
        .fold(f64::INFINITY, f64::min);
    RunShape {
        early_w: stats::mean(&early).unwrap_or(0.0),
        peak_w,
        trough_after_peak_w: if trough.is_finite() { trough } else { peak_w },
        plateau_w: stats::mean(&late).unwrap_or(0.0),
        report,
    }
}

/// Regenerates Fig. 6: CB-8K-GEMM total and XCD power over run time.
pub fn fig6(scale: Scale) -> RunShape {
    let kernel = suite::cb_gemm(&machine(), 8192);
    run_shape(profile_kernel("fig6", &kernel, scale.runs(200)))
}

/// Regenerates Fig. 8: CB-2K-GEMM total and XCD power over run time.
pub fn fig8(scale: Scale) -> RunShape {
    let kernel = suite::cb_gemm(&machine(), 2048);
    run_shape(profile_kernel("fig8", &kernel, scale.runs(0)))
}

// ---------------------------------------------------------------------
// Fig. 7 — component comparison of GEMMs and GEMVs
// ---------------------------------------------------------------------

/// One kernel's component-level SSP power.
#[derive(Debug, Clone)]
pub struct ComponentRow {
    /// Kernel label.
    pub label: String,
    /// Suite category.
    pub class: SuiteClass,
    /// SSP-profile mean component power, watts.
    pub mean: ComponentPower,
    /// Achieved compute utilization (from the workload model).
    pub utilization: f64,
}

impl ComponentRow {
    /// Component power relative to `reference_w`.
    pub fn relative(&self, reference_w: f64) -> ComponentPower {
        self.mean * (1.0 / reference_w)
    }
}

/// Fig. 7 output.
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// One row per GEMM/GEMV kernel.
    pub rows: Vec<ComponentRow>,
    /// The full reports (for CSV dumps).
    pub reports: Vec<KernelPowerReport>,
    /// Power-proportionality spread across the CB GEMMs (takeaway #4).
    pub cb_proportionality_spread: Option<f64>,
}

/// Regenerates Fig. 7 (and feeds takeaways #2-#4).
pub fn fig7(scale: Scale) -> Fig7Data {
    let m = machine();
    let kernels = suite::gemm_suite(&m);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for sk in &kernels {
        let report = profile_kernel(&format!("fig7-{}", sk.label), &sk.desc, scale.runs(0));
        let mean = report
            .ssp_profile
            .mean_power()
            .expect("SSP profile has LOIs");
        rows.push(ComponentRow {
            label: sk.label.clone(),
            class: sk.class,
            mean,
            utilization: sk.desc.compute_utilization,
        });
        reports.push(report);
    }
    let cb_points: Vec<ProportionalityPoint> = rows
        .iter()
        .filter(|r| r.class.is_compute_bound_gemm())
        .map(|r| ProportionalityPoint {
            label: r.label.clone(),
            compute_utilization: r.utilization,
            xcd_power_w: r.mean.xcd,
        })
        .collect();
    Fig7Data {
        cb_proportionality_spread: fingrav_core::insights::proportionality_spread(&cb_points),
        rows,
        reports,
    }
}

// ---------------------------------------------------------------------
// Fig. 9 — interleaved kernels
// ---------------------------------------------------------------------

/// One interleaving scenario of Fig. 9.
#[derive(Debug, Clone)]
pub struct InterleaveScenario {
    /// Scenario name in the paper's notation, e.g. `CB->2K`.
    pub name: String,
    /// Target kernel label.
    pub target: String,
    /// Isolated-vs-interleaved effect on measured power.
    pub effect: InterleaveEffect,
    /// LOIs collected inside the interleaved target execution.
    pub interleaved_lois: usize,
}

/// Fig. 9 output.
#[derive(Debug, Clone)]
pub struct Fig9Data {
    /// All five paper scenarios.
    pub scenarios: Vec<InterleaveScenario>,
}

/// Measures a target kernel's power when preceded by other kernels.
/// Returns `(mean total power of LOIs in target executions, LOI count)`.
fn interleaved_mean(
    sim: &mut Simulation,
    pre: &[(KernelHandle, u32)],
    target: KernelHandle,
    runs: u32,
) -> (Option<f64>, usize) {
    let window = PowerBackend::logger_window(sim);
    let mut lois: Vec<f64> = Vec::new();
    for _ in 0..runs {
        let mut b = Script::builder()
            .begin_run()
            .start_power_logger()
            .read_gpu_timestamp()
            .sleep_uniform(SimDuration::ZERO, SimDuration::from_millis(1));
        for &(k, n) in pre {
            b = b.launch_timed(k, n);
        }
        let script = b
            .launch_timed(target, 1)
            .sleep(window + SimDuration::from_micros(100))
            .read_gpu_timestamp()
            .stop_power_logger()
            .sleep(SimDuration::from_millis(8))
            .build();
        let trace = Simulation::run_script(sim, &script).expect("interleave script");
        let first = trace.timestamp_reads[0];
        let last = trace.timestamp_reads[1];
        let calib = ReadDelayCalibration {
            median_rtt_ns: first.rtt_ns(),
            assumed_sample_frac: 0.5,
        };
        let sync = TimeSync::from_two_anchors(&first, &last, &calib).unwrap_or_else(|_| {
            TimeSync::from_anchor(&first, &calib, PowerBackend::gpu_counter_hz(sim))
        });
        let placed = place_logs(&trace, &sync);
        for l in &placed {
            if let Some((pos, _)) = l.containing_exec {
                if trace.executions[pos].kernel == target {
                    lois.push(l.power.total());
                }
            }
        }
    }
    (stats::mean(&lois), lois.len())
}

/// Regenerates Fig. 9: the five interleaving scenarios.
pub fn fig9(scale: Scale) -> Fig9Data {
    let m = machine();
    let runs = match scale {
        Scale::Full => 400,
        Scale::Quick => 150,
        // Interleaved LOIs are rare (a log must land inside the one target
        // execution — a ~1% event for the GEMV scenarios), so fewer runs
        // harvest none and the takeaway-5 contamination signal collapses
        // to +0%. Quick-scale counts are the smallest that land LOIs in
        // every scenario, and the figure still regenerates in ~60 ms.
        Scale::Bench => 150,
    };
    let iso_runs = scale.runs(0);

    // Isolated SSP references.
    let cb8 = suite::cb_gemm(&m, 8192);
    let cb4 = suite::cb_gemm(&m, 4096);
    let cb2 = suite::cb_gemm(&m, 2048);
    let v8 = suite::mb_gemv(&m, 8192);
    let v4 = suite::mb_gemv(&m, 4096);
    let v2 = suite::mb_gemv(&m, 2048);
    let iso = |name: &str, desc: &KernelDesc| -> f64 {
        profile_kernel(&format!("fig9-iso-{name}"), desc, iso_runs)
            .ssp_mean_total_w
            .expect("isolated SSP measured")
    };
    let iso_8k = iso("cb8", &cb8);
    let iso_2k = iso("cb2", &cb2);
    let iso_v8 = iso("v8", &v8);
    let iso_v4 = iso("v4", &v4);

    let mut scenarios = Vec::new();
    let mut scenario = |name: &str,
                        target_label: &str,
                        isolated_w: f64,
                        pre_descs: Vec<(&KernelDesc, u32)>,
                        target_desc: &KernelDesc| {
        let mut sim = simulation(&format!("fig9-{name}"));
        let pre: Vec<(KernelHandle, u32)> = pre_descs
            .iter()
            .map(|(d, n)| {
                (
                    PowerBackend::register_kernel(&mut sim, d).expect("register"),
                    *n,
                )
            })
            .collect();
        let target = PowerBackend::register_kernel(&mut sim, target_desc).expect("register");
        let (mean, lois) = interleaved_mean(&mut sim, &pre, target, runs);
        scenarios.push(InterleaveScenario {
            name: name.to_string(),
            target: target_label.to_string(),
            effect: InterleaveEffect {
                isolated_w,
                interleaved_w: mean.unwrap_or(isolated_w),
            },
            interleaved_lois: lois,
        });
    };

    // Paper scenarios, left graph: GEMM targets.
    scenario("CB->8K", "CB-8K-GEMM", iso_8k, vec![(&cb2, 60)], &cb8);
    scenario("MB->2K", "CB-2K-GEMM", iso_2k, vec![(&v4, 40)], &cb2);
    // Enough heavy predecessors that the firmware reaches its plateau
    // (past the initial excursion trough) before the target launches.
    scenario(
        "CB->2K",
        "CB-2K-GEMM",
        iso_2k,
        vec![(&cb8, 6), (&cb4, 20)],
        &cb2,
    );
    // Right graph: GEMV targets.
    scenario(
        "MB->8Kgemv",
        "MB-8K-GEMV",
        iso_v8,
        vec![(&v4, 20), (&v2, 20)],
        &v8,
    );
    scenario(
        "CB->4Kgemv",
        "MB-4K-GEMV",
        iso_v4,
        vec![(&cb8, 2), (&cb4, 2)],
        &v4,
    );

    Fig9Data { scenarios }
}

// ---------------------------------------------------------------------
// Fig. 10 — collectives vs CB-8K-GEMM
// ---------------------------------------------------------------------

/// Fig. 10 output: component rows for the eight collectives plus the
/// CB-8K-GEMM reference.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Component rows (collectives then the GEMM reference).
    pub rows: Vec<ComponentRow>,
    /// Full reports.
    pub reports: Vec<KernelPowerReport>,
}

/// Regenerates Fig. 10.
pub fn fig10(scale: Scale) -> Fig10Data {
    let m = machine();
    let mut kernels = suite::collective_suite(&m, fingrav_sim::fabric::Fabric::default());
    kernels.push(
        suite::full_suite(&m)
            .into_iter()
            .find(|k| k.label == "CB-8K-GEMM")
            .expect("suite contains CB-8K-GEMM"),
    );
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for sk in &kernels {
        let report = profile_kernel(&format!("fig10-{}", sk.label), &sk.desc, scale.runs(0));
        let mean = report
            .ssp_profile
            .mean_power()
            .expect("SSP profile has LOIs");
        rows.push(ComponentRow {
            label: sk.label.clone(),
            class: sk.class,
            mean,
            utilization: sk.desc.compute_utilization,
        });
        reports.push(report);
    }
    Fig10Data { rows, reports }
}

// ---------------------------------------------------------------------
// Table II — takeaway verification
// ---------------------------------------------------------------------

/// One verified takeaway.
#[derive(Debug, Clone)]
pub struct Table2Check {
    /// Takeaway number in the paper.
    pub takeaway: u32,
    /// Short description.
    pub description: String,
    /// Measured evidence, human-readable.
    pub evidence: String,
    /// Whether the reproduction exhibits the claimed behaviour.
    pub holds: bool,
}

/// Table II output.
#[derive(Debug, Clone)]
pub struct Table2Data {
    /// One entry per paper takeaway.
    pub checks: Vec<Table2Check>,
}

/// Regenerates Table II by verifying each takeaway against fresh profiles.
pub fn table2(scale: Scale) -> Table2Data {
    let m = machine();
    let mut checks = Vec::new();

    // Takeaway 1: SSE/SSP divergence depends on exec time vs window.
    let r8 = profile_kernel("table2-cb8", &suite::cb_gemm(&m, 8192), scale.runs(0));
    let r4 = profile_kernel("table2-cb4", &suite::cb_gemm(&m, 4096), scale.runs(0));
    let r2 = profile_kernel("table2-cb2", &suite::cb_gemm(&m, 2048), scale.runs(0));
    let (e8, e4, e2) = (
        r8.sse_vs_ssp_error.unwrap_or(f64::NAN),
        r4.sse_vs_ssp_error.unwrap_or(f64::NAN),
        r2.sse_vs_ssp_error.unwrap_or(f64::NAN),
    );
    checks.push(Table2Check {
        takeaway: 1,
        description: "similar exec times can manifest very different power profiles; \
                      SSE-vs-SSP error grows as exec time shrinks below the averaging window"
            .into(),
        evidence: format!(
            "SSE-vs-SSP error: CB-2K {:.0}% > CB-4K {:.0}% > CB-8K {:.0}%",
            e2 * 100.0,
            e4 * 100.0,
            e8 * 100.0
        ),
        holds: e2 > e4 && e4 > e8 && e2 > 0.30,
    });

    // Takeaways 2-4 from the Fig. 7 data.
    let f7 = fig7(scale);
    let row = |label: &str| -> &ComponentRow {
        f7.rows
            .iter()
            .find(|r| r.label == label)
            .expect("row present")
    };
    let cb_total_min = f7
        .rows
        .iter()
        .filter(|r| r.class.is_compute_bound_gemm())
        .map(|r| r.mean.total())
        .fold(f64::INFINITY, f64::min);
    let mb_total_max = f7
        .rows
        .iter()
        .filter(|r| r.class.is_memory_bound_gemv())
        .map(|r| r.mean.total())
        .fold(0.0_f64, f64::max);
    let v8_iod = row("MB-8K-GEMV").mean.iod;
    let cb4_iod = row("CB-4K-GEMM").mean.iod;
    checks.push(Table2Check {
        takeaway: 2,
        description: "total power scales with work; components stressed per algorithm".into(),
        evidence: format!(
            "min CB total {cb_total_min:.0} W > max MB total {mb_total_max:.0} W; \
             MB-8K-GEMV IOD {v8_iod:.0} W vs CB-4K IOD {cb4_iod:.0} W"
        ),
        holds: cb_total_min > mb_total_max && v8_iod > cb4_iod,
    });

    let cb_xcd_dominant = f7
        .rows
        .iter()
        .filter(|r| r.class.is_compute_bound_gemm())
        .all(|r| {
            let b = fingrav_core::insights::ComponentBreakdown { mean: r.mean };
            b.dominant() == Component::Xcd
        });
    checks.push(Table2Check {
        takeaway: 3,
        description: "compute-heavy kernels are dominated by XCD power".into(),
        evidence: format!(
            "XCD share of CB-8K-GEMM: {:.0}%",
            100.0 * row("CB-8K-GEMM").mean.xcd / row("CB-8K-GEMM").mean.total()
        ),
        holds: cb_xcd_dominant,
    });

    let spread = f7.cb_proportionality_spread.unwrap_or(1.0);
    let xcd_ratio = row("CB-2K-GEMM").mean.xcd / row("CB-8K-GEMM").mean.xcd;
    let util_ratio = row("CB-2K-GEMM").utilization / row("CB-8K-GEMM").utilization;
    checks.push(Table2Check {
        takeaway: 4,
        description: "compute-light and compute-heavy kernels show similar XCD power \
                      (power non-proportionality)"
            .into(),
        evidence: format!(
            "CB-2K/CB-8K: XCD power ratio {xcd_ratio:.2} vs utilization ratio {util_ratio:.2}; \
             utilization-per-watt spread {spread:.2}x"
        ),
        holds: xcd_ratio > 0.75 && util_ratio < 0.6 && spread > 1.4,
    });

    // Takeaway 5 from the Fig. 9 data.
    let f9 = fig9(scale);
    let eff = |name: &str| -> f64 {
        f9.scenarios
            .iter()
            .find(|s| s.name == name)
            .expect("scenario present")
            .effect
            .relative()
    };
    let heavy = eff("CB->8K");
    let mb2k = eff("MB->2K");
    let cb2k = eff("CB->2K");
    let mb8v = eff("MB->8Kgemv");
    let cb4v = eff("CB->4Kgemv");
    checks.push(Table2Check {
        takeaway: 5,
        description: "short kernels' measured power is contaminated by preceding kernels; \
                      compute-heavy kernels are not"
            .into(),
        evidence: format!(
            "effects: CB->8K {heavy:+.0}%, MB->2K {mb2k:+.0}%, CB->2K {cb2k:+.0}%, \
             MB->8Kgemv {mb8v:+.0}%, CB->4Kgemv {cb4v:+.0}%",
            heavy = heavy * 100.0,
            mb2k = mb2k * 100.0,
            cb2k = cb2k * 100.0,
            mb8v = mb8v * 100.0,
            cb4v = cb4v * 100.0
        ),
        holds: mb2k < -0.10
            && cb2k > 0.02
            && mb8v < -0.02
            && cb4v > 0.10
            && heavy.abs() < 0.5 * mb2k.abs(),
    });

    Table2Data { checks }
}

// ---------------------------------------------------------------------
// Extra: component profile dump helpers shared by binaries
// ---------------------------------------------------------------------

/// Builds a merged relative profile CSV-ready structure for component rows.
pub fn max_total(rows: &[ComponentRow]) -> f64 {
    rows.iter().map(|r| r.mean.total()).fold(1e-9, f64::max)
}

/// Collects the SSP profile of every report into one labelled profile list.
pub fn labelled_ssp_profiles(reports: &[KernelPowerReport]) -> Vec<(String, PowerProfile)> {
    reports
        .iter()
        .map(|r| (r.label.clone(), r.ssp_profile.clone()))
        .collect()
}

/// Flattens a report's run profile into `(x_ms, total, xcd, iod, hbm)` rows
/// (a stable columnar argsort; the permutation gathers rows without moving
/// any point structs).
pub fn run_profile_rows(report: &KernelPowerReport) -> Vec<(f64, f64, f64, f64, f64)> {
    let store = &report.run_profile.store;
    store
        .argsort_by_axis(ProfileAxis::RunTime)
        .into_iter()
        .map(|i| {
            let i = i as usize;
            let power = store.power(i);
            (
                store.run_time_ns(i) / 1e6,
                power.total(),
                power.xcd,
                power.iod,
                power.hbm,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment smoke tests run at Bench scale; the full-scale shape
    // assertions live in the workspace integration tests.

    #[test]
    fn table1_bench_scale() {
        let t = table1(Scale::Bench);
        assert_eq!(t.rows.len(), 4);
        assert!(t.table_markdown.contains("400"));
    }

    #[test]
    fn fig6_bench_scale_has_profile() {
        let s = fig6(Scale::Bench);
        assert!(!s.report.run_profile.is_empty());
        assert!(s.plateau_w > 0.0);
    }

    #[test]
    fn run_profile_rows_sorted() {
        let s = fig8(Scale::Bench);
        let rows = run_profile_rows(&s.report);
        for w in rows.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn max_total_positive() {
        let rows = vec![ComponentRow {
            label: "x".into(),
            class: SuiteClass::Gemm(fingrav_workloads::Boundedness::ComputeBound),
            mean: ComponentPower::new(1.0, 2.0, 3.0, 4.0),
            utilization: 0.5,
        }];
        assert_eq!(max_total(&rows), 10.0);
    }
}
