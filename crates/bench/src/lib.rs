//! # fingrav-bench — the paper's evaluation, regenerated
//!
//! One experiment function per table/figure of the FinGraV paper
//! (ISPASS 2025), shared between the `src/bin` regeneration binaries and
//! the Criterion benches. Every experiment is deterministic given its
//! built-in seed and returns plain data that the binaries render to
//! stdout + CSV.
//!
//! | Artifact | Function | Paper content |
//! |---|---|---|
//! | Table I  | [`experiments::table1`]  | profiling guidance + empirical LOI yields |
//! | Fig. 3   | [`experiments::fig3`]    | challenge demonstrations C1–C4 |
//! | Fig. 5   | [`experiments::fig5`]    | sync benefit, binning benefit, #runs resiliency |
//! | Fig. 6   | [`experiments::fig6`]    | CB-8K-GEMM total+XCD power vs run time |
//! | Fig. 7   | [`experiments::fig7`]    | component analysis, CB GEMMs vs MB GEMVs |
//! | Fig. 8   | [`experiments::fig8`]    | CB-2K-GEMM total+XCD power vs run time |
//! | Fig. 9   | [`experiments::fig9`]    | interleaved-kernel power contamination |
//! | Fig. 10  | [`experiments::fig10`]   | collectives vs CB-8K-GEMM, per component |
//! | Table II | [`experiments::table2`]  | takeaway/recommendation verification |

// No unsafe anywhere in this crate; `fgrv-lint`'s unsafe-audit keeps it so.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod render;

pub use harness::Scale;
