//! AoS vs columnar (SoA) profile storage: memory footprint and the
//! sort/filter/mean hot paths, on a full-scale synthetic profile.
//!
//! The synthetic profile models a full-scale campaign kernel: ~400 golden
//! runs × ~250 stitched points each (the paper's Table I guidance yields
//! profiles of this order for sub-100 µs kernels), with ~10 % of points
//! falling outside any execution (logger lead-in/drain). The bench prints
//! the measured heap-footprint ratio up front, then times:
//!
//! * `mean` — mean component power over every point;
//! * `sort` — stable ordering by run-relative time (the CSV/series path);
//! * `filter` — busy-window clipping (`0 ≤ t ≤ end` on LOIs only);
//! * `encode/decode` — the columnar store's binary round trip.
//!
//! Run with `cargo bench -p fingrav-bench --bench profile_store`. Use
//! `--save-baseline NAME` / `--baseline NAME` (vendored-criterion
//! fidelity) to compare against a previous run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fingrav_core::mmap::MappedProfile;
use fingrav_core::profile::{ProfileAxis, ProfilePoint};
use fingrav_core::store::{ProfileStore, ProfileStoreView};
use fingrav_sim::power::ComponentPower;

const RUNS: u32 = 400;
const POINTS_PER_RUN: u32 = 250;

/// Deterministic synthetic point stream (SplitMix64-driven), shaped like a
/// stitched run profile: mostly LOIs, some out-of-execution points.
fn synthetic_points() -> Vec<ProfilePoint> {
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut unit = move || (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let mut points = Vec::with_capacity((RUNS * POINTS_PER_RUN) as usize);
    for run in 0..RUNS {
        for k in 0..POINTS_PER_RUN {
            let in_exec = unit() > 0.1;
            let exec_pos = (k / 4).min(60);
            let run_time_ns = f64::from(k) * 1.0e6 + unit() * 1.0e6 - 5.0e5;
            let w = 500.0 + 200.0 * unit();
            points.push(ProfilePoint {
                run,
                exec_pos: in_exec.then_some(exec_pos),
                toi_ns: in_exec.then(|| unit() * 1.0e6),
                run_time_ns,
                power: ComponentPower::new(w * 0.55, w * 0.2, w * 0.15, w * 0.1),
            });
        }
    }
    points
}

/// Heap footprint of the AoS representation, bytes.
fn aos_heap_bytes(points: &[ProfilePoint]) -> usize {
    std::mem::size_of_val(points)
}

fn bench_profile_store(c: &mut Criterion) {
    let points = synthetic_points();
    let store = ProfileStore::from_points(points.iter().copied());

    let aos = aos_heap_bytes(&points);
    let soa = store.heap_bytes();
    println!(
        "profile-store footprint: AoS {:.2} MiB vs SoA {:.2} MiB -> {:.2}x smaller \
         ({} points, {} bytes/point AoS vs {:.1} bytes/point SoA)",
        aos as f64 / (1 << 20) as f64,
        soa as f64 / (1 << 20) as f64,
        aos as f64 / soa as f64,
        points.len(),
        std::mem::size_of::<ProfilePoint>(),
        soa as f64 / points.len() as f64,
    );

    let mut group = c.benchmark_group("profile_store");
    group.sample_size(20);

    group.bench_function("mean/aos", |b| {
        b.iter(|| {
            let sum = points
                .iter()
                .fold(ComponentPower::ZERO, |acc, p| acc + p.power);
            black_box(sum / points.len() as f64)
        })
    });
    group.bench_function("mean/columnar", |b| {
        b.iter(|| black_box(store.mean_power()))
    });
    let encoded = store.to_bytes();
    let view = ProfileStoreView::new(&encoded).expect("valid encoding");
    group.bench_function("mean/view", |b| b.iter(|| black_box(view.mean_power())));

    group.bench_function("sort/aos", |b| {
        b.iter(|| {
            let mut rows: Vec<&ProfilePoint> = points.iter().collect();
            rows.sort_by(|a, b| {
                a.run_time_ns
                    .partial_cmp(&b.run_time_ns)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            black_box(rows.len())
        })
    });
    group.bench_function("sort/columnar-argsort", |b| {
        b.iter(|| black_box(store.argsort_by_axis(ProfileAxis::RunTime).len()))
    });

    let end_ns = f64::from(POINTS_PER_RUN) * 0.8e6;
    group.bench_function("filter/aos", |b| {
        b.iter(|| {
            let kept: Vec<ProfilePoint> = points
                .iter()
                .filter(|p| p.exec_pos.is_some() && p.run_time_ns >= 0.0 && p.run_time_ns <= end_ns)
                .copied()
                .collect();
            black_box(kept.len())
        })
    });
    group.bench_function("filter/columnar-indices", |b| {
        b.iter(|| {
            let kept = store.indices_where(|p| {
                p.in_exec() && p.run_time_ns() >= 0.0 && p.run_time_ns() <= end_ns
            });
            black_box(kept.len())
        })
    });
    group.bench_function("filter/view", |b| {
        b.iter(|| {
            let kept = view.indices_where(|p| {
                p.in_exec() && p.run_time_ns() >= 0.0 && p.run_time_ns() <= end_ns
            });
            black_box(kept.len())
        })
    });

    group.bench_function("encode/columnar-binary", |b| {
        b.iter(|| black_box(store.to_bytes().len()))
    });
    let bytes = store.to_bytes();
    group.bench_function("decode/columnar-binary", |b| {
        b.iter(|| black_box(ProfileStore::from_bytes(&bytes).expect("decodes").len()))
    });
    // The zero-copy decode: full validation (header, layout, canonical
    // form), zero column materialisation. This is the number that must
    // beat `decode/columnar-binary` by the 2x acceptance floor.
    group.bench_function("decode/view", |b| {
        b.iter(|| black_box(ProfileStoreView::new(&bytes).expect("decodes").len()))
    });
    // Same decode over an mmapped file instead of an in-memory buffer
    // (pages are hot after the first pass, so this times the decoder, not
    // the disk).
    let mmap_path =
        std::env::temp_dir().join(format!("fingrav-bench-decode-{}.fgrv", std::process::id()));
    std::fs::write(&mmap_path, &bytes).expect("bench scratch file");
    let mapped = MappedProfile::open(&mmap_path).expect("maps");
    group.bench_function("decode/mmap", |b| {
        b.iter(|| black_box(mapped.view().expect("decodes").len()))
    });
    group.finish();
    drop(mapped);
    let _ = std::fs::remove_file(&mmap_path);

    // Sanity: the view path agrees with the owned path on every benched
    // kernel before any of its timings are trusted.
    assert_eq!(
        view.to_store(),
        store,
        "view decode must equal owned decode"
    );
    assert_eq!(view.mean_power(), store.mean_power());
    assert_eq!(
        view.indices_where(|p| p.in_exec() && p.run_time_ns() >= 0.0 && p.run_time_ns() <= end_ns),
        store.indices_where(|p| p.in_exec() && p.run_time_ns() >= 0.0 && p.run_time_ns() <= end_ns),
    );

    // Sanity: both representations agree before any ratio is trusted.
    let aos_mean = points
        .iter()
        .fold(ComponentPower::ZERO, |acc, p| acc + p.power)
        / points.len() as f64;
    let soa_mean = store.mean_power().expect("non-empty");
    assert_eq!(aos_mean, soa_mean, "AoS and columnar means must agree");
}

criterion_group!(benches, bench_profile_store);
criterion_main!(benches);
