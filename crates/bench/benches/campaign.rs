//! Serial vs parallel campaign execution over the paper's fourteen-kernel
//! suite at bench scale.
//!
//! The parallel run shards kernels across worker threads with
//! per-kernel-seeded fresh simulations, so its `CampaignReport` is
//! bit-identical to the serial run (asserted here before timing). Speedup
//! scales with available cores — near-linear until the kernel count (14)
//! or the core count binds, since shards share no state; on a single-core
//! machine both paths time alike.

use criterion::{criterion_group, criterion_main, Criterion};
use fingrav_bench::harness::{campaign_factory, default_workers};
use fingrav_bench::Scale;
use fingrav_core::campaign::Campaign;
use fingrav_core::executor::CampaignExecutor;
use fingrav_core::runner::RunnerConfig;
use fingrav_sim::config::SimConfig;
use fingrav_workloads::suite;
use std::time::Instant;

fn suite_campaign() -> Campaign {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig {
        runs_override: Scale::Bench.runs(200),
        calibration_reads: 16,
        extra_run_batches: 1,
        ..RunnerConfig::default()
    });
    campaign.add_all(suite::full_suite(&machine).into_iter().map(|k| k.desc));
    campaign
}

fn bench_campaign(c: &mut Criterion) {
    let campaign = suite_campaign();
    let factory = campaign_factory("bench-campaign");
    // At least two workers so the threaded path is always exercised; on a
    // single-core machine that measures pure sharding overhead (expect
    // ~1x), on an N-core machine near-linear speedup up to min(N, 14).
    let workers = default_workers().max(2);
    assert_eq!(campaign.len(), 14, "the paper's full suite");

    // Correctness first: sharding must not change a single byte.
    let serial = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("suite profiles");
    let parallel = CampaignExecutor::new(workers)
        .run(&campaign, &factory)
        .expect("suite profiles");
    assert_eq!(serial, parallel, "parallel must be bit-identical to serial");

    // Headline number outside criterion's sampling: one timed pass each.
    let t0 = Instant::now();
    let _ = CampaignExecutor::serial().run(&campaign, &factory);
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = CampaignExecutor::new(workers).run(&campaign, &factory);
    let parallel_s = t0.elapsed().as_secs_f64();
    println!(
        "campaign/14-kernel suite: serial {serial_s:.2}s, parallel({workers} workers) \
         {parallel_s:.2}s -> speedup {:.2}x",
        serial_s / parallel_s.max(1e-9)
    );

    let mut group = c.benchmark_group("campaign/suite14");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| CampaignExecutor::serial().run(&campaign, &factory))
    });
    group.bench_function(&format!("parallel-{workers}w"), |b| {
        b.iter(|| CampaignExecutor::new(workers).run(&campaign, &factory))
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
