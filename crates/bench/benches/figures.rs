//! Criterion benchmarks regenerating each paper table/figure dataset at a
//! reduced (bench) scale — one benchmark per artefact, so `cargo bench`
//! exercises the entire evaluation pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use fingrav_bench::experiments;
use fingrav_bench::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1", |b| b.iter(|| experiments::table1(Scale::Bench)));
    group.bench_function("fig3", |b| b.iter(|| experiments::fig3(Scale::Bench)));
    group.bench_function("fig5", |b| b.iter(|| experiments::fig5(Scale::Bench)));
    group.bench_function("fig6", |b| b.iter(|| experiments::fig6(Scale::Bench)));
    group.bench_function("fig7", |b| b.iter(|| experiments::fig7(Scale::Bench)));
    group.bench_function("fig8", |b| b.iter(|| experiments::fig8(Scale::Bench)));
    group.bench_function("fig9", |b| b.iter(|| experiments::fig9(Scale::Bench)));
    group.bench_function("fig10", |b| b.iter(|| experiments::fig10(Scale::Bench)));
    group.bench_function("table2", |b| b.iter(|| experiments::table2(Scale::Bench)));

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
