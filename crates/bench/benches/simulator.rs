//! Criterion benchmarks of the simulator substrate: full profiling-run
//! scripts and the discrete-event core. These bound the cost of data
//! collection on the simulated platform.

use criterion::{criterion_group, criterion_main, Criterion};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::event::EventQueue;
use fingrav_sim::script::Script;
use fingrav_sim::time::{SimDuration, SimTime};
use fingrav_workloads::suite;

fn bench_run_script(c: &mut Criterion) {
    let machine = SimConfig::default().machine;
    let mut group = c.benchmark_group("simulator/run_script");
    group.sample_size(20);

    for (name, desc, execs) in [
        ("cb-4k x24", suite::cb_gemm(&machine, 4096), 24u32),
        ("cb-8k x8", suite::cb_gemm(&machine, 8192), 8),
        ("mb-8k-gemv x64", suite::mb_gemv(&machine, 8192), 64),
    ] {
        group.bench_function(name, |b| {
            let mut sim = Simulation::new(SimConfig::default(), 7).expect("config valid");
            let k = sim.register_kernel(desc.clone()).expect("valid kernel");
            let script = Script::builder()
                .begin_run()
                .start_power_logger()
                .read_gpu_timestamp()
                .launch_timed(k, execs)
                .sleep(SimDuration::from_millis(1))
                .read_gpu_timestamp()
                .stop_power_logger()
                .sleep(SimDuration::from_millis(8))
                .build();
            b.iter(|| sim.run_script(&script).expect("script runs"));
        });
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simulator/event_queue 10k schedule+pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x: u64 = 0x9E3779B97F4A7C15;
            for i in 0..10_000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q.schedule(SimTime::from_nanos(x % 1_000_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            acc
        })
    });
}

fn bench_idle_advance(c: &mut Criterion) {
    c.bench_function("simulator/advance_idle 100ms", |b| {
        let mut sim = Simulation::new(SimConfig::default(), 9).expect("config valid");
        b.iter(|| {
            sim.advance_idle(SimDuration::from_millis(100))
                .expect("idle")
        });
    });
}

criterion_group!(
    benches,
    bench_run_script,
    bench_event_queue,
    bench_idle_advance
);
criterion_main!(benches);
