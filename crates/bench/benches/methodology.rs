//! Criterion micro-benchmarks of the FinGraV methodology primitives:
//! time-sync conversion, execution-time binning, LOI placement, polynomial
//! regression, and guidance lookup. These quantify the post-processing
//! cost of the methodology itself (negligible next to data collection).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use fingrav_core::binning::bin_durations;
use fingrav_core::guidance::GuidanceTable;
use fingrav_core::profile::place_logs;
use fingrav_core::regression::{degree4, linear};
use fingrav_core::sync::{ReadDelayCalibration, TimeSync};
use fingrav_sim::kernel::KernelHandle;
use fingrav_sim::power::ComponentPower;
use fingrav_sim::telemetry::PowerLog;
use fingrav_sim::time::{CpuTime, GpuTicks, SimDuration};
use fingrav_sim::trace::{RunTrace, TimedExecution, TimestampRead};

fn sync() -> TimeSync {
    let read = TimestampRead {
        cpu_before: CpuTime::from_nanos(1_000_000),
        cpu_after: CpuTime::from_nanos(1_001_500),
        ticks: GpuTicks::from_raw(5_000_000),
    };
    let calib = ReadDelayCalibration {
        median_rtt_ns: 1_500,
        assumed_sample_frac: 0.5,
    };
    TimeSync::from_anchor(&read, &calib, 100e6)
}

/// A synthetic trace with `execs` executions and `logs` power logs.
fn trace(execs: u32, logs: u32) -> RunTrace {
    let mut t = RunTrace::default();
    for i in 0..execs {
        let start = 1_000_000 + i as u64 * 220_000;
        t.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: i,
            cpu_start: CpuTime::from_nanos(start),
            cpu_end: CpuTime::from_nanos(start + 210_000),
        });
    }
    for k in 0..logs {
        t.power_logs.push(PowerLog {
            ticks: GpuTicks::from_raw(5_000_000 + k as u64 * 100_000),
            avg: ComponentPower::new(450.0, 90.0, 70.0, 40.0),
        });
    }
    t
}

fn durations(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| 210_000 + ((i * 2_654_435_761) % 4_000) as u64)
        .collect()
}

fn bench_sync_conversion(c: &mut Criterion) {
    let s = sync();
    c.bench_function("sync/cpu_ns_of_ticks x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..1000u64 {
                acc += s.cpu_ns_of_ticks(black_box(5_000_000 + k * 97));
            }
            acc
        })
    });
}

fn bench_binning(c: &mut Criterion) {
    let d = durations(10_000);
    c.bench_function("binning/bin_durations 10k", |b| {
        b.iter(|| bin_durations(black_box(&d), 0.02))
    });
    let d = durations(400);
    c.bench_function("binning/bin_durations 400", |b| {
        b.iter(|| bin_durations(black_box(&d), 0.05))
    });
}

fn bench_place_logs(c: &mut Criterion) {
    let t = trace(40, 60);
    let s = sync();
    c.bench_function("profile/place_logs 40x60", |b| {
        b.iter(|| place_logs(black_box(&t), black_box(&s)))
    });
}

fn bench_regression(c: &mut Criterion) {
    let xs: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 100.0 + 0.02 * x + (x * 0.01).sin())
        .collect();
    c.bench_function("regression/degree4 5k points", |b| {
        b.iter(|| degree4(black_box(&xs), black_box(&ys)).expect("fit"))
    });
    c.bench_function("regression/linear 5k points", |b| {
        b.iter(|| linear(black_box(&xs), black_box(&ys)).expect("fit"))
    });
}

fn bench_guidance(c: &mut Criterion) {
    let table = GuidanceTable::paper();
    c.bench_function("guidance/lookup x1000", |b| {
        b.iter_batched(
            || (),
            |_| {
                let mut acc = 0u32;
                for us in 1..1000u64 {
                    acc = acc.wrapping_add(
                        table
                            .lookup(SimDuration::from_micros(black_box(us * 3)))
                            .runs,
                    );
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_sync_conversion,
    bench_binning,
    bench_place_logs,
    bench_regression,
    bench_guidance
);
criterion_main!(benches);
