//! Engine hot-loop benchmarks: campaign throughput of the discrete-event
//! simulator itself.
//!
//! Every campaign entry ultimately drains `sim::engine`'s event loop, so
//! these benches bound how fast the layers above (sharded executors,
//! checkpoints, transport) can possibly go. Three benches:
//!
//! * `run/noop` — a full instrumented profiling run (logger bracket around
//!   a timed GEMM launch, then an 8 ms quiescent drain) on the unobserved
//!   `run_script` path. This is the campaign hot path; the headline number
//!   is runs/sec.
//! * `run/observed` — the same run streamed through a counting closure
//!   sink, so the delta against `run/noop` is the observation overhead.
//! * `idle/50ms` — a pure sleep window, pumping only the four periodic
//!   telemetry streams; the headline number is events/sec.
//!
//! Run with `cargo bench -p fingrav-bench --bench engine`. Use
//! `--save-baseline NAME` / `--baseline NAME` to compare runs; CI gates on
//! the committed baselines under `crates/bench/baselines/`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fingrav_sim::config::SimConfig;
use fingrav_sim::engine::Simulation;
use fingrav_sim::script::Script;
use fingrav_sim::session::{AbortHandle, TelemetryEvent};
use fingrav_sim::time::SimDuration;
use fingrav_workloads::suite;

/// A fresh session plus the canonical instrumented profiling run: the
/// same shape the methodology benches execute thousands of times per
/// campaign (logger bracket, timed launch, quiescent drain).
fn profiling_run() -> (Simulation, Script) {
    let machine = SimConfig::default().machine;
    let mut sim = Simulation::new(SimConfig::default(), 7).expect("config valid");
    let k = sim
        .register_kernel(suite::cb_gemm(&machine, 4096))
        .expect("valid kernel");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .read_gpu_timestamp()
        .launch_timed(k, 24)
        .sleep(SimDuration::from_millis(1))
        .read_gpu_timestamp()
        .stop_power_logger()
        .sleep(SimDuration::from_millis(8))
        .build();
    (sim, script)
}

/// Periodic events the engine pops in a window of simulated time (the
/// four free-running telemetry streams; host/kernel events excluded).
fn periodic_events_in(cfg: &SimConfig, window: SimDuration) -> u64 {
    let w = window.as_nanos();
    w / cfg.telemetry.sensor_period.as_nanos()
        + w / cfg.pm.control_period.as_nanos()
        + w / cfg.telemetry.logger_period.as_nanos()
        + w / cfg.telemetry.coarse_period.as_nanos()
}

fn bench_engine(c: &mut Criterion) {
    // Sanity: the noop path and the observed path agree bit for bit
    // before either timing is trusted, and the stream actually streams.
    {
        let (mut noop_sim, script) = profiling_run();
        let noop_trace = noop_sim.run_script(&script).expect("script runs");
        let (mut obs_sim, script) = profiling_run();
        let mut events = 0u64;
        let mut sink = |_e: TelemetryEvent| events += 1;
        let obs_trace = obs_sim
            .run_script_observed(&script, &mut sink, &AbortHandle::new())
            .expect("script runs");
        assert_eq!(noop_trace, obs_trace, "observed run must be bit-identical");
        assert!(events > 10, "streaming must actually stream");
        assert_eq!(noop_trace.executions.len(), 24);
        assert!(!noop_trace.power_logs.is_empty());
    }

    // Headline throughput, printed up front (criterion times per-iter;
    // these lines put the absolute rates on the record).
    const WARM_RUNS: u32 = 50;
    let (mut sim, script) = profiling_run();
    let start = Instant::now();
    for _ in 0..WARM_RUNS {
        black_box(sim.run_script(&script).expect("script runs"));
    }
    let noop_elapsed = start.elapsed();
    let runs_per_sec = f64::from(WARM_RUNS) / noop_elapsed.as_secs_f64();
    let events_per_run = sim.engine_stats().events_popped / u64::from(WARM_RUNS);

    let (mut sim, script) = profiling_run();
    let abort = AbortHandle::new();
    let start = Instant::now();
    for _ in 0..WARM_RUNS {
        let mut events = 0u64;
        let mut sink = |_e: TelemetryEvent| events += 1;
        black_box(
            sim.run_script_observed(&script, &mut sink, &abort)
                .expect("script runs"),
        );
        black_box(events);
    }
    let observed_elapsed = start.elapsed();

    let idle_window = SimDuration::from_millis(50);
    let idle_events = periodic_events_in(&SimConfig::default(), idle_window);
    let mut idle = Simulation::new(SimConfig::default(), 9).expect("config valid");
    const WARM_IDLES: u32 = 20;
    let start = Instant::now();
    for _ in 0..WARM_IDLES {
        idle.advance_idle(idle_window).expect("idle");
    }
    let idle_elapsed = start.elapsed();
    let events_per_sec = (idle_events * u64::from(WARM_IDLES)) as f64 / idle_elapsed.as_secs_f64();

    println!(
        "engine throughput: {runs_per_sec:.0} runs/sec (noop, {events_per_run} events/run), \
         observed/noop overhead {:.2}x, {:.2}M periodic events/sec idle \
         ({idle_events} events per 50 ms window)",
        observed_elapsed.as_secs_f64() / noop_elapsed.as_secs_f64(),
        events_per_sec / 1e6,
    );

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);

    group.bench_function("run/noop", |b| {
        let (mut sim, script) = profiling_run();
        b.iter(|| black_box(sim.run_script(&script).expect("script runs")));
    });

    group.bench_function("run/observed", |b| {
        let (mut sim, script) = profiling_run();
        let abort = AbortHandle::new();
        b.iter(|| {
            let mut events = 0u64;
            let mut sink = |_e: TelemetryEvent| events += 1;
            let trace = sim
                .run_script_observed(&script, &mut sink, &abort)
                .expect("script runs");
            black_box((trace.executions.len(), events))
        });
    });

    group.bench_function("idle/50ms", |b| {
        let mut sim = Simulation::new(SimConfig::default(), 9).expect("config valid");
        b.iter(|| sim.advance_idle(idle_window).expect("idle"));
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
