//! End-to-end fixture tests for the lint scan: the seeded-violation
//! tree produces exactly the golden diagnostics (asserted verbatim),
//! the clean tree produces none, and the real workspace at HEAD scans
//! clean — which is what makes `cargo test` itself a lint gate.

use std::path::PathBuf;

use fgrv_lint::{run, Config};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The bad fixture holds one violation per rule class; the rendering is
/// asserted byte-for-byte so diagnostic wording, ordering, and the
/// summary line are all pinned.
#[test]
fn bad_fixture_golden_output() {
    let report = run(&Config::for_root(fixture_root("bad")));
    let expected = "\
docs/FORMATS.md: [format-constants] doc never spells out the `WIRE_MAGIC` bytes (42 41 44 46 52 4D 54 21); the layout table must show them
lint-allow.toml:4: [allowlist-integrity] stale allowlist entry: no `codec-hygiene` finding in src/store/decode.rs matches `this pattern matches no source line` — delete it
src/annot.rs:3: [annotation-hygiene] `#[allow(…)]` without a trailing justification comment: say why the suppressed lint does not apply
    | #[allow(dead_code)]
src/engine.rs:7: [atomics-discipline] `Ordering::SeqCst` outside the allowlist: add a lint-allow.toml entry whose justification states the happens-before argument
    | flag.store(true, Ordering::SeqCst);
src/mmap.rs:5: [unsafe-audit] `unsafe` site is not in the committed unsafe-registry.toml: new unsafe must be an explicit reviewed diff
    | unsafe { *p }
src/mmap.rs:5: [unsafe-audit] `unsafe` without an adjacent `// SAFETY:` comment: state the soundness argument directly above the unsafe site
    | unsafe { *p }
src/store/decode.rs:6: [codec-hygiene] truncating `as u32` cast on a length-derived value: use `try_from`/a checked helper so oversized lengths become typed errors
    | let n = len as u32;
src/store/decode.rs:7: [codec-hygiene] `.unwrap()` in a decoder module: return the typed codec error instead (or allowlist with a proof of infallibility)
    | let first = bytes.first().unwrap();
src/store/decode.rs:8: [codec-hygiene] direct slice indexing in a decoder module: use a bounded-read helper (`get`/`split_at_checked`-based) so corrupt offsets become typed errors
    | first + bytes[n as usize]
tests/data/corrupt.fgrvckpt: [format-constants] fixture magic does not match CKPT_MAGIC
fgrv-lint: 10 finding(s) in 5 files scanned
";
    assert_eq!(report.render_human(), expected);
}

/// Every rule class fires exactly once in the bad fixture — the seeded
/// violations stay in one-to-one correspondence with the rule table.
#[test]
fn bad_fixture_covers_every_rule_class() {
    let report = run(&Config::for_root(fixture_root("bad")));
    for rule in fgrv_lint::RULES {
        let hits = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule.name)
            .count();
        assert!(
            hits > 0,
            "rule `{}` produced no finding in the bad fixture",
            rule.name
        );
    }
}

/// The clean fixture (a well-written decoder among other code) must not
/// trip any rule: the negative control against false positives.
#[test]
fn clean_fixture_is_clean() {
    let report = run(&Config::for_root(fixture_root("clean")));
    assert!(
        report.is_clean(),
        "clean fixture produced findings:\n{}",
        report.render_human()
    );
    assert_eq!(report.files_scanned, 2);
}

/// The workspace at HEAD scans clean — the same gate CI enforces, so a
/// plain `cargo test` catches a violation (or a stale allowlist entry)
/// before a push does.
#[test]
fn workspace_head_scans_clean() {
    let report = run(&Config::for_root(fgrv_lint::workspace_root()));
    assert!(
        report.is_clean(),
        "workspace scan is not clean:\n{}",
        report.render_human()
    );
}

/// `--format json` output must be real JSON: parsed back with the
/// vendored serde_json, field by field, against the typed report.
#[test]
fn json_output_round_trips() {
    let report = run(&Config::for_root(fixture_root("bad")));
    let value: serde_json::Value =
        serde_json::from_str(&report.render_json()).expect("render_json emits valid JSON");
    let map = value.as_map().expect("top level is an object");
    let top = |name: &str| {
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("missing field {name}"))
    };
    assert_eq!(
        top("count"),
        serde_json::Value::UInt(report.diagnostics.len() as u64)
    );
    let diags_value = top("diagnostics");
    let diags = diags_value.as_seq().expect("diagnostics array");
    assert_eq!(diags.len(), report.diagnostics.len());
    for (json, diag) in diags.iter().zip(&report.diagnostics) {
        let obj = json.as_map().expect("diagnostic object");
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing field {name}"))
        };
        assert_eq!(field("file").as_str(), Some(diag.file.as_str()));
        assert_eq!(field("rule").as_str(), Some(diag.rule));
        assert_eq!(field("line"), serde_json::Value::UInt(diag.line as u64));
    }
}
