//! Fixture: a lint suppression with no trailing justification.

#[allow(dead_code)]
fn unused() {}
