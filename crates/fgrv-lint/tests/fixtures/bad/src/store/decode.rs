//! Fixture: one of each codec-hygiene violation class in a decoder
//! module (`store/` path component).

/// A truncating cast, an unwrap, and a direct index — three findings.
pub fn decode(bytes: &[u8], len: u64) -> u8 {
    let n = len as u32;
    let first = bytes.first().unwrap();
    first + bytes[n as usize]
}
