//! Fixture: an atomic ordering with no allowlist entry.

use std::sync::atomic::{AtomicBool, Ordering};

/// One atomics-discipline finding.
pub fn spin(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
