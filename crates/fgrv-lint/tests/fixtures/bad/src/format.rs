//! Fixture: format constants cross-checked against `docs/FORMATS.md`
//! and the corrupt golden fixture under `tests/data/`.

/// Checkpoint magic — agrees with the doc, disagrees with the fixture.
pub const CKPT_MAGIC: [u8; 8] = *b"FGRVCKPT";
/// Checkpoint version — agrees with both.
pub const CKPT_VERSION: u32 = 1;
/// Wire magic — named in the doc, but its byte spelling is missing.
pub const WIRE_MAGIC: [u8; 8] = *b"BADFRMT!";
