//! Fixture: unsafe with no SAFETY comment and no registry entry.

/// Two unsafe-audit findings on the same line.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
