//! Fixture: a file with none of the flagged patterns.

/// Safe arithmetic, no codec/unsafe/atomic/annotation material.
pub fn double(x: u32) -> u64 {
    u64::from(x) * 2
}
