//! Fixture: a decoder module written the way the codec-hygiene rule
//! wants — bounded reads, typed errors, checked conversions.

/// Decodes a length-prefixed byte, returning `None` on any shortfall.
pub fn decode(bytes: &[u8]) -> Option<u8> {
    let len_bytes: [u8; 8] = bytes.get(0..8)?.try_into().ok()?;
    let len = usize::try_from(u64::from_le_bytes(len_bytes)).ok()?;
    bytes.get(8..)?.get(len).copied()
}
