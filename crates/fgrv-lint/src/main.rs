//! CLI entry point: `cargo run -p fgrv-lint [-- --format json]`.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use fgrv_lint::{run, workspace_root, Config};

const USAGE: &str = "\
fgrv-lint — FinGraV workspace invariant linter

USAGE:
    cargo run -p fgrv-lint [-- OPTIONS]

OPTIONS:
    --root DIR        directory to scan (default: the workspace root)
    --format FMT      `human` (default) or `json`
    --allow FILE      allowlist path (default: ROOT/lint-allow.toml)
    --registry FILE   unsafe registry (default: ROOT/unsafe-registry.toml)
    --out FILE        also write the rendered report to FILE
    -h, --help        this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("human");
    let mut allow: Option<PathBuf> = None;
    let mut registry: Option<PathBuf> = None;
    let mut out_file: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        let r = match arg.as_str() {
            "--root" => take("--root").map(|v| root = Some(PathBuf::from(v))),
            "--format" => take("--format").map(|v| format = v),
            "--allow" => take("--allow").map(|v| allow = Some(PathBuf::from(v))),
            "--registry" => take("--registry").map(|v| registry = Some(PathBuf::from(v))),
            "--out" => take("--out").map(|v| out_file = Some(PathBuf::from(v))),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = r {
            eprintln!("fgrv-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if format != "human" && format != "json" {
        eprintln!("fgrv-lint: --format must be `human` or `json`, got `{format}`");
        return ExitCode::from(2);
    }

    let root = root.unwrap_or_else(workspace_root);
    if !root.is_dir() {
        eprintln!("fgrv-lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let mut cfg = Config::for_root(root);
    if let Some(a) = allow {
        cfg.allowlist_path = a;
    }
    if let Some(r) = registry {
        cfg.registry_path = r;
    }

    let report = run(&cfg);
    let rendered = if format == "json" {
        report.render_json()
    } else {
        report.render_human()
    };
    print!("{rendered}");
    if let Some(path) = out_file {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("fgrv-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
