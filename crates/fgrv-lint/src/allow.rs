//! The committed allowlist (`lint-allow.toml`) and unsafe registry
//! (`unsafe-registry.toml`).
//!
//! Both files use the same minimal TOML subset, parsed here by hand
//! (no crates.io, like everything else in this tool): `#` comments,
//! `[[table]]` array-of-table headers, and `key = value` pairs where a
//! value is a double-quoted string (with `\"`, `\\`, `\n`, `\t`
//! escapes) or an unsigned integer. That subset is all the two formats
//! need; anything else is a hard parse error so a typo cannot silently
//! disable an entry.
//!
//! Every entry carries a mandatory, non-empty `justification` string —
//! the point of the files is that suppressing a diagnostic is an
//! explicit, reviewed, *argued* decision.

use std::fmt;

/// One `[[allow]]` entry: suppresses diagnostics of `rule` in `file`
/// whose flagged line contains `pattern`, at most `max` times.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry suppresses (must be a suppressible rule).
    pub rule: String,
    /// Repo-relative file the entry applies to (forward slashes).
    pub file: String,
    /// Substring the flagged source line must contain.
    pub pattern: String,
    /// Why the finding is acceptable. Required, non-empty.
    pub justification: String,
    /// Maximum number of findings the entry may absorb (`None` =
    /// unbounded). Findings beyond the cap are reported normally.
    pub max: Option<u64>,
    /// 1-indexed line of the entry's `[[allow]]` header.
    pub line: usize,
}

/// One `[[unsafe]]` registry entry: a reviewed `unsafe` site.
#[derive(Debug, Clone)]
pub struct UnsafeEntry {
    /// Repo-relative file holding the `unsafe` site.
    pub file: String,
    /// Substring of the source line containing the `unsafe` keyword.
    pub contains: String,
    /// Why the unsafe is sound. Required, non-empty.
    pub justification: String,
    /// 1-indexed line of the entry's `[[unsafe]]` header.
    pub line: usize,
}

/// Parse error with its 1-indexed line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-indexed line of the offending construct.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// A raw `key = value` pair.
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Int(u64),
}

/// A raw parsed table with its header name and line.
#[derive(Debug)]
struct Table {
    name: String,
    line: usize,
    pairs: Vec<(String, Value)>,
}

fn parse_tables(src: &str) -> Result<Vec<Table>, ParseError> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            tables.push(Table {
                name: name.trim().to_string(),
                line: lineno,
                pairs: Vec::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ParseError {
                line: lineno,
                msg: format!("expected `key = value` or `[[table]]`, got `{line}`"),
            });
        };
        let key = line[..eq].trim().to_string();
        let val = parse_value(line[eq + 1..].trim(), lineno)?;
        let Some(table) = tables.last_mut() else {
            return Err(ParseError {
                line: lineno,
                msg: format!("`{key}` appears before any `[[table]]` header"),
            });
        };
        table.pairs.push((key, val));
    }
    Ok(tables)
}

/// Strips a trailing `#` comment, respecting string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_value(s: &str, line: usize) -> Result<Value, ParseError> {
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => {
                        return Err(ParseError {
                            line,
                            msg: format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                        })
                    }
                },
                '"' => {
                    let rest: String = chars.collect();
                    if !rest.trim().is_empty() {
                        return Err(ParseError {
                            line,
                            msg: format!("trailing content after string: `{}`", rest.trim()),
                        });
                    }
                    return Ok(Value::Str(out));
                }
                c => out.push(c),
            }
        }
        Err(ParseError {
            line,
            msg: "unterminated string".to_string(),
        })
    } else if s.chars().all(|c| c.is_ascii_digit()) && !s.is_empty() {
        s.parse::<u64>().map(Value::Int).map_err(|e| ParseError {
            line,
            msg: format!("bad integer `{s}`: {e}"),
        })
    } else {
        Err(ParseError {
            line,
            msg: format!("expected a quoted string or integer, got `{s}`"),
        })
    }
}

fn take_str(table: &Table, key: &str) -> Result<Option<String>, ParseError> {
    for (k, v) in &table.pairs {
        if k == key {
            return match v {
                Value::Str(s) => Ok(Some(s.clone())),
                Value::Int(_) => Err(ParseError {
                    line: table.line,
                    msg: format!("`{key}` must be a string"),
                }),
            };
        }
    }
    Ok(None)
}

fn require_str(table: &Table, key: &str) -> Result<String, ParseError> {
    take_str(table, key)?.ok_or_else(|| ParseError {
        line: table.line,
        msg: format!("entry is missing `{key}`"),
    })
}

/// Parses a `lint-allow.toml` body into `[[allow]]` entries.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, ParseError> {
    let mut out = Vec::new();
    for t in parse_tables(src)? {
        if t.name != "allow" {
            return Err(ParseError {
                line: t.line,
                msg: format!("unknown table `[[{}]]` (expected `[[allow]]`)", t.name),
            });
        }
        let mut max = None;
        for (k, v) in &t.pairs {
            if k == "max" {
                max = match v {
                    Value::Int(n) => Some(*n),
                    Value::Str(_) => {
                        return Err(ParseError {
                            line: t.line,
                            msg: "`max` must be an integer".to_string(),
                        })
                    }
                };
            }
        }
        out.push(AllowEntry {
            rule: require_str(&t, "rule")?,
            file: require_str(&t, "file")?,
            pattern: require_str(&t, "pattern")?,
            justification: require_str(&t, "justification")?,
            max,
            line: t.line,
        });
    }
    Ok(out)
}

/// Parses an `unsafe-registry.toml` body into `[[unsafe]]` entries.
pub fn parse_registry(src: &str) -> Result<Vec<UnsafeEntry>, ParseError> {
    let mut out = Vec::new();
    for t in parse_tables(src)? {
        if t.name != "unsafe" {
            return Err(ParseError {
                line: t.line,
                msg: format!("unknown table `[[{}]]` (expected `[[unsafe]]`)", t.name),
            });
        }
        out.push(UnsafeEntry {
            file: require_str(&t, "file")?,
            contains: require_str(&t, "contains")?,
            justification: require_str(&t, "justification")?,
            line: t.line,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_comments_and_escapes() {
        let src = r##"
# header comment
[[allow]]
rule = "codec-hygiene"     # trailing comment
file = "crates/core/src/store/mod.rs"
pattern = "expect(\"4-byte chunk\")"
justification = "chunks_exact(4) yields 4-byte slices"
max = 3
"##;
        let entries = parse_allowlist(src).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].pattern, "expect(\"4-byte chunk\")");
        assert_eq!(entries[0].max, Some(3));
    }

    #[test]
    fn missing_justification_is_a_parse_error() {
        let src = "[[allow]]\nrule = \"x\"\nfile = \"y\"\npattern = \"z\"\n";
        assert!(parse_allowlist(src).is_err());
    }

    #[test]
    fn unknown_table_rejected() {
        assert!(parse_allowlist("[[typo]]\n").is_err());
        assert!(parse_registry("[[allow]]\n").is_err());
    }

    #[test]
    fn registry_round_trip() {
        let src = "[[unsafe]]\nfile = \"a.rs\"\ncontains = \"unsafe impl Send\"\njustification = \"immutable\"\n";
        let r = parse_registry(src).unwrap();
        assert_eq!(r[0].contains, "unsafe impl Send");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let src =
            "[[allow]]\nrule = \"r\"\nfile = \"f\"\npattern = \"a # b\"\njustification = \"j\"\n";
        assert_eq!(parse_allowlist(src).unwrap()[0].pattern, "a # b");
    }
}
