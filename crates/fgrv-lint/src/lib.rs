//! `fgrv-lint` — workspace static analysis for FinGraV's invariants.
//!
//! FinGraV's value is trustworthy fine-grain power data. The repo holds
//! three versioned untrusted-input codecs (`FGRVPROF`/`FGRVCKPT`/
//! `FGRVWIRE`), an unsafe mmap read path, and lock-free cancellation
//! flags spread across crates — correctness that tests exercise but
//! nothing *enforces*. This tool machine-checks those conventions as
//! deny-by-default diagnostics:
//!
//! * **codec-hygiene** — decoder modules must be panic-free on
//!   untrusted input;
//! * **unsafe-audit** — every `unsafe` carries a `// SAFETY:` comment
//!   and a reviewed `unsafe-registry.toml` entry;
//! * **atomics-discipline** — every `Ordering::` use documents its
//!   happens-before argument in the allowlist;
//! * **format-constants** — magics/versions/tags agree with
//!   `docs/FORMATS.md` and the committed golden fixtures;
//! * **annotation-hygiene** — `#[allow]`/`#[expect]`/`#[ignore]`
//!   require a trailing justification comment;
//! * **allowlist-integrity** — suppressions must parse, be justified,
//!   and still match a live finding.
//!
//! Everything is hand-rolled (lexer, parser, TOML subset, JSON
//! output) — the tool takes no dependencies, vendored or otherwise, so
//! it can never be broken by the code it checks. See
//! `docs/ANALYSIS.md` for the full rule catalogue and workflow.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

mod allow;
mod lexer;
mod rules;

pub use allow::{parse_allowlist, parse_registry, AllowEntry, UnsafeEntry};
pub use rules::{ConstVal, FormatConst};

/// One registered rule, for documentation cross-checks.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name, as printed in diagnostics.
    pub name: &'static str,
    /// One-line summary of the invariant the rule enforces.
    pub summary: &'static str,
    /// True when a `lint-allow.toml` entry can suppress findings of
    /// this rule.
    pub suppressible: bool,
}

/// Every rule the binary registers, in catalogue order. The
/// `docs/ANALYSIS.md` rule list is cross-checked against this table by
/// `tests/docs_spec.rs`.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "codec-hygiene",
        summary: "decoder modules stay panic-free on untrusted input: no unwrap/expect/panic!/\
                  unreachable!, no direct slice indexing, no truncating casts on length-derived \
                  values",
        suppressible: true,
    },
    RuleInfo {
        name: "unsafe-audit",
        summary: "every unsafe block/impl/fn carries an adjacent // SAFETY: comment and a \
                  reviewed unsafe-registry.toml entry",
        suppressible: false,
    },
    RuleInfo {
        name: "atomics-discipline",
        summary: "every atomic Ordering:: use in non-test code is covered by an allowlist entry \
                  documenting its happens-before argument",
        suppressible: true,
    },
    RuleInfo {
        name: "format-constants",
        summary: "MAGIC/VERSION/frame-tag/section-tag constants agree with the formats document \
                  and the committed golden fixtures",
        suppressible: false,
    },
    RuleInfo {
        name: "annotation-hygiene",
        summary: "#[allow(...)], #[expect(...)] and bare #[ignore] carry a trailing \
                  justification comment",
        suppressible: false,
    },
    RuleInfo {
        name: "allowlist-integrity",
        summary: "allowlist and registry entries parse, carry non-empty justifications, name \
                  real rules, and still match at least one live finding",
        suppressible: false,
    },
];

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative file (forward slashes), or a doc/fixture path for
    /// workspace-level rules.
    pub file: String,
    /// 1-indexed line; 0 for file-level findings.
    pub line: usize,
    /// Rule that fired.
    pub rule: &'static str,
    /// Trimmed source line, empty for file-level findings.
    pub snippet: String,
    /// Human explanation.
    pub message: String,
}

/// Scan configuration. [`Config::for_root`] fills the conventional
/// paths; tests and the CLI override as needed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directory to scan (the workspace root in normal use).
    pub root: PathBuf,
    /// The committed allowlist; missing file = empty allowlist.
    pub allowlist_path: PathBuf,
    /// The committed unsafe registry; missing file = empty registry.
    pub registry_path: PathBuf,
    /// The normative formats document for `format-constants`.
    pub formats_doc: PathBuf,
    /// Directory of committed golden fixtures (`*.fgrv`, `*.fgrvckpt`).
    pub fixture_data: PathBuf,
    /// Path substrings that mark a file as a decoder module.
    pub decoder_patterns: Vec<String>,
}

impl Config {
    /// The conventional layout under `root`.
    pub fn for_root(root: impl Into<PathBuf>) -> Config {
        let root = root.into();
        Config {
            allowlist_path: root.join("lint-allow.toml"),
            registry_path: root.join("unsafe-registry.toml"),
            formats_doc: root.join("docs/FORMATS.md"),
            fixture_data: root.join("tests/data"),
            decoder_patterns: ["store/", "checkpoint.rs", "transport.rs", "mmap.rs"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            root,
        }
    }
}

/// The workspace root this binary was built in (two levels above the
/// crate manifest).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Scan result.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the scan produced no findings.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one block per finding plus a summary
    /// line. Asserted verbatim by the fixture tests — keep stable.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if d.line == 0 {
                out.push_str(&format!("{}: [{}] {}\n", d.file, d.rule, d.message));
            } else {
                out.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    d.file, d.line, d.rule, d.message
                ));
            }
            if !d.snippet.is_empty() {
                out.push_str(&format!("    | {}\n", d.snippet));
            }
        }
        if self.is_clean() {
            out.push_str(&format!(
                "fgrv-lint: clean ({} files scanned)\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "fgrv-lint: {} finding(s) in {} files scanned\n",
                self.diagnostics.len(),
                self.files_scanned
            ));
        }
        out
    }

    /// Machine-readable rendering (`--format json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"snippet\": {}, \
                 \"message\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(d.rule),
                json_str(&d.snippet),
                json_str(&d.message)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
            self.diagnostics.len(),
            self.files_scanned
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-file context handed to the rules.
pub(crate) struct FileCtx<'a> {
    /// Repo-relative path, forward slashes.
    pub rel_path: String,
    /// Raw source lines (for snippets and registry matching).
    pub lines: Vec<&'a str>,
    /// Lexed tokens and comments.
    pub lexed: lexer::Lexed,
    /// `#[cfg(test)] mod …` line ranges (inclusive).
    pub test_regions: Vec<(usize, usize)>,
    /// True for files under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
    /// True when the path matches a decoder-module pattern.
    pub is_decoder: bool,
}

impl FileCtx<'_> {
    pub fn line_text(&self, line: usize) -> &str {
        self.lines.get(line.wrapping_sub(1)).copied().unwrap_or("")
    }

    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "fixtures", "node_modules"];

fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Finds `#[cfg(test)] mod … { … }` regions by token scan, so in-file
/// unit-test modules are exempt from the non-test rules.
fn find_test_regions(lx: &lexer::Lexed) -> Vec<(usize, usize)> {
    let toks = &lx.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // `#[cfg(…test…)]`
        let is_cfg_test = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 3;
        let mut depth = 0usize;
        let mut has_test = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('[') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth = depth.saturating_sub(1);
            } else if t.is_ident("test") {
                has_test = true;
            }
            j += 1;
        }
        if !has_test {
            i = j;
            continue;
        }
        // Skip any further attributes, then expect `(pub) mod name {`.
        let mut k = j + 1;
        while toks.get(k).is_some_and(|t| t.is_punct('#')) {
            let mut depth = 0usize;
            k += 1;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        if toks.get(k).is_some_and(|t| t.is_ident("pub")) {
            k += 1;
        }
        if !toks.get(k).is_some_and(|t| t.is_ident("mod")) {
            i = j + 1;
            continue;
        }
        // Find the module's `{ … }` span.
        while k < toks.len() && !toks[k].is_punct('{') {
            k += 1;
        }
        let start_line = toks[i].line;
        let mut brace = 0usize;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                brace += 1;
            } else if toks[k].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            k += 1;
        }
        let end_line = toks.get(k).map_or(usize::MAX, |t| t.line);
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

/// Runs the full scan.
pub fn run(cfg: &Config) -> Report {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut unsafe_sites: Vec<rules::UnsafeSite> = Vec::new();
    let mut consts: Vec<rules::FormatConst> = Vec::new();

    let files = collect_rs_files(&cfg.root);
    let files_scanned = files.len();
    for path in &files {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(path) else {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel,
                line: 0,
                snippet: String::new(),
                message: "file could not be read as UTF-8".to_string(),
            });
            continue;
        };
        let lexed = lexer::lex(&src);
        let test_regions = find_test_regions(&lexed);
        let is_test_file = rel
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let ctx = FileCtx {
            is_decoder: cfg
                .decoder_patterns
                .iter()
                .any(|p| rel.contains(p.as_str())),
            rel_path: rel,
            lines: src.lines().collect(),
            lexed,
            test_regions,
            is_test_file,
        };
        rules::codec_hygiene(&ctx, &mut diagnostics);
        rules::unsafe_audit(&ctx, &mut diagnostics, &mut unsafe_sites);
        rules::atomics_discipline(&ctx, &mut diagnostics);
        rules::annotation_hygiene(&ctx, &mut diagnostics);
        rules::extract_format_consts(&ctx, &mut consts);
    }

    // Rule 4 runs workspace-wide over the extracted constants.
    let doc = std::fs::read_to_string(&cfg.formats_doc).ok();
    let doc_rel = cfg
        .formats_doc
        .strip_prefix(&cfg.root)
        .unwrap_or(&cfg.formats_doc)
        .to_string_lossy()
        .replace('\\', "/");
    let fixtures = read_fixtures(&cfg.fixture_data, &cfg.root);
    rules::check_format_consts(
        &consts,
        doc.as_deref(),
        &doc_rel,
        &fixtures,
        &mut diagnostics,
    );

    // Allowlist: suppress what a justified entry covers; everything
    // about the allowlist itself is a finding.
    apply_allowlist(cfg, &mut diagnostics);
    apply_registry(cfg, &unsafe_sites, &mut diagnostics);

    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diagnostics.dedup();
    Report {
        diagnostics,
        files_scanned,
    }
}

fn read_fixtures(dir: &Path, root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let is_fixture = name
            .as_deref()
            .is_some_and(|n| n.ends_with(".fgrv") || n.ends_with(".fgrvckpt"));
        if !is_fixture {
            continue;
        }
        if let Ok(bytes) = std::fs::read(&path) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, bytes));
        }
    }
    out.sort();
    out
}

fn allowlist_rel(cfg: &Config) -> String {
    cfg.allowlist_path
        .strip_prefix(&cfg.root)
        .unwrap_or(&cfg.allowlist_path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn apply_allowlist(cfg: &Config, diagnostics: &mut Vec<Diagnostic>) {
    let rel = allowlist_rel(cfg);
    let entries = match std::fs::read_to_string(&cfg.allowlist_path) {
        Ok(src) => match allow::parse_allowlist(&src) {
            Ok(entries) => entries,
            Err(e) => {
                diagnostics.push(Diagnostic {
                    rule: "allowlist-integrity",
                    file: rel,
                    line: e.line,
                    snippet: String::new(),
                    message: format!("allowlist does not parse: {}", e.msg),
                });
                return;
            }
        },
        Err(_) => Vec::new(),
    };

    let mut hits: BTreeMap<usize, u64> = BTreeMap::new();
    for (idx, e) in entries.iter().enumerate() {
        hits.insert(idx, 0);
        if e.justification.trim().is_empty() {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel.clone(),
                line: e.line,
                snippet: String::new(),
                message: format!(
                    "entry for `{}` in {} has an empty justification",
                    e.pattern, e.file
                ),
            });
        }
        let suppressible = RULES.iter().any(|r| r.name == e.rule && r.suppressible);
        if !suppressible {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel.clone(),
                line: e.line,
                snippet: String::new(),
                message: format!("`{}` is not a suppressible rule", e.rule),
            });
        }
    }

    diagnostics.retain(|d| {
        for (idx, e) in entries.iter().enumerate() {
            let matches = e.rule == d.rule
                && e.file == d.file
                && !e.justification.trim().is_empty()
                && d.snippet.contains(&e.pattern);
            if matches {
                let h = hits.entry(idx).or_insert(0);
                if e.max.is_none_or(|m| *h < m) {
                    *h += 1;
                    return false;
                }
            }
        }
        true
    });

    for (idx, e) in entries.iter().enumerate() {
        if hits.get(&idx) == Some(&0) && !e.justification.trim().is_empty() {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel.clone(),
                line: e.line,
                snippet: String::new(),
                message: format!(
                    "stale allowlist entry: no `{}` finding in {} matches `{}` — delete it",
                    e.rule, e.file, e.pattern
                ),
            });
        }
    }
}

fn apply_registry(cfg: &Config, sites: &[rules::UnsafeSite], diagnostics: &mut Vec<Diagnostic>) {
    let rel = cfg
        .registry_path
        .strip_prefix(&cfg.root)
        .unwrap_or(&cfg.registry_path)
        .to_string_lossy()
        .replace('\\', "/");
    let entries = match std::fs::read_to_string(&cfg.registry_path) {
        Ok(src) => match allow::parse_registry(&src) {
            Ok(entries) => entries,
            Err(e) => {
                diagnostics.push(Diagnostic {
                    rule: "allowlist-integrity",
                    file: rel,
                    line: e.line,
                    snippet: String::new(),
                    message: format!("unsafe registry does not parse: {}", e.msg),
                });
                return;
            }
        },
        Err(_) => Vec::new(),
    };

    for e in &entries {
        if e.justification.trim().is_empty() {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel.clone(),
                line: e.line,
                snippet: String::new(),
                message: format!(
                    "registry entry for `{}` in {} has an empty justification",
                    e.contains, e.file
                ),
            });
        }
    }

    let mut used = vec![false; entries.len()];
    for site in sites {
        let covered = entries.iter().enumerate().any(|(i, e)| {
            let m = e.file == site.file
                && site.snippet.contains(&e.contains)
                && !e.justification.trim().is_empty();
            if m {
                used[i] = true;
            }
            m
        });
        if !covered {
            diagnostics.push(Diagnostic {
                rule: "unsafe-audit",
                file: site.file.clone(),
                line: site.line,
                snippet: site.snippet.clone(),
                message: "`unsafe` site is not in the committed unsafe-registry.toml: new \
                          unsafe must be an explicit reviewed diff"
                    .to_string(),
            });
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] && !e.justification.trim().is_empty() {
            diagnostics.push(Diagnostic {
                rule: "allowlist-integrity",
                file: rel.clone(),
                line: e.line,
                snippet: String::new(),
                message: format!(
                    "stale registry entry: no `unsafe` line in {} contains `{}` — delete it",
                    e.file, e.contains
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_for(rel: &str, src: &str, decoder: bool) -> (String, Vec<Diagnostic>) {
        let lexed = lexer::lex(src);
        let test_regions = find_test_regions(&lexed);
        let ctx = FileCtx {
            rel_path: rel.to_string(),
            lines: src.lines().collect(),
            lexed,
            test_regions,
            is_test_file: false,
            is_decoder: decoder,
        };
        let mut out = Vec::new();
        rules::codec_hygiene(&ctx, &mut out);
        rules::atomics_discipline(&ctx, &mut out);
        rules::annotation_hygiene(&ctx, &mut out);
        (rel.to_string(), out)
    }

    #[test]
    fn unwrap_flagged_only_in_decoder_modules() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        let (_, d) = ctx_for("crates/core/src/checkpoint.rs", src, true);
        assert_eq!(d.iter().filter(|d| d.rule == "codec-hygiene").count(), 1);
        let (_, d) = ctx_for("crates/core/src/stats.rs", src, false);
        assert!(d.iter().all(|d| d.rule != "codec-hygiene"));
    }

    #[test]
    fn cfg_test_mod_is_exempt_from_codec_rules() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let (_, d) = ctx_for("crates/core/src/transport.rs", src, true);
        assert!(d.iter().all(|d| d.rule != "codec-hygiene"), "{d:?}");
    }

    #[test]
    fn indexing_and_casts_flagged() {
        let src = "fn f(b: &[u8], len: u64) -> u8 { let n = len as u32; b[n as usize] }";
        let (_, d) = ctx_for("crates/core/src/store/mod.rs", src, true);
        let msgs: Vec<_> = d.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("truncating")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("slice indexing")),
            "{msgs:?}"
        );
    }

    #[test]
    fn array_types_and_attributes_are_not_indexing() {
        let src =
            "#[derive(Debug)] // plain\nstruct S { m: [u8; 8] }\nfn f() -> [u8; 4] { *b\"abcd\" }";
        let (_, d) = ctx_for("crates/core/src/mmap.rs", src, true);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn atomics_need_allowlist_and_cmp_ordering_is_exempt() {
        let src = "fn f() { x.load(Ordering::Acquire); y.cmp(&z) == std::cmp::Ordering::Equal; }";
        let (_, d) = ctx_for("crates/core/src/executor.rs", src, false);
        assert_eq!(
            d.iter().filter(|d| d.rule == "atomics-discipline").count(),
            1
        );
    }

    #[test]
    fn annotations_need_justification() {
        let src = "#[allow(dead_code)]\nfn a() {}\n#[allow(dead_code)] // helper kept for parity\nfn b() {}\n#[ignore = \"slow\"]\nfn c() {}\n";
        let (_, d) = ctx_for("crates/core/src/lib.rs", src, false);
        assert_eq!(
            d.iter().filter(|d| d.rule == "annotation-hygiene").count(),
            1
        );
    }

    #[test]
    fn safety_comment_satisfies_unsafe_audit_locally() {
        let src = "// SAFETY: region is immutable for 'static.\nunsafe impl Send for X {}\n";
        let lexed = lexer::lex(src);
        let ctx = FileCtx {
            rel_path: "crates/core/src/mmap.rs".to_string(),
            lines: src.lines().collect(),
            lexed,
            test_regions: Vec::new(),
            is_test_file: false,
            is_decoder: true,
        };
        let mut d = Vec::new();
        let mut sites = Vec::new();
        rules::unsafe_audit(&ctx, &mut d, &mut sites);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(sites.len(), 1);
    }
}
