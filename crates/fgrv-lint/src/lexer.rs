//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! The lexer turns a source file into a flat token stream plus a
//! per-line comment map. It understands everything that can *hide*
//! tokens from a naive text scan — string/char/byte literals, raw
//! strings with `#` fences, nested block comments, lifetimes — so the
//! rules never fire inside a string or a comment, and comment-adjacency
//! checks (`// SAFETY:`, trailing justifications) see exactly the
//! comments the compiler would.
//!
//! It deliberately does **not** build an AST: the FinGraV invariant
//! rules are all expressible over token patterns plus brace tracking,
//! which keeps the tool dependency-free and fast.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `mod`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal, suffix included (`1_000u64`, `0x2F`).
    Num,
    /// Any single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Verbatim source text. For [`TokKind::Str`] this is the *raw*
    /// literal including quotes and any `r#` fences.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: usize,
}

impl Token {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment attached to a source line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed line the comment starts on.
    pub line: usize,
    /// Comment text, delimiters stripped, for line comments; block
    /// comments keep interior newlines.
    pub text: String,
    /// True when code tokens precede the comment on its line — a
    /// *trailing* comment in the justification-comment sense.
    pub after_code: bool,
}

/// Lex result: tokens, comments, and which lines hold code.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True when any comment *starting* within `lines` (inclusive
    /// range) contains `needle`. Block comments count on their start
    /// line only, which is adjacent enough for `SAFETY:` checks.
    pub fn comment_in_lines_contains(&self, lo: usize, hi: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line >= lo && c.line <= hi && c.text.contains(needle))
    }

    /// The trailing comment on `line`, if any.
    pub fn trailing_comment(&self, line: usize) -> Option<&Comment> {
        self.comments
            .iter()
            .find(|c| c.line == line && c.after_code)
    }
}

/// Lexes `src`. Unterminated literals/comments are tolerated (the rest
/// of the file is consumed) — the linter is not a compiler and must
/// never panic on weird input.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Lines on which at least one token has been emitted, tracked to
    // mark comments as trailing. Only the current line matters.
    let mut code_on_line = false;
    let mut cur_line_no = 1usize;

    macro_rules! mark_line {
        () => {
            if line != cur_line_no {
                cur_line_no = line;
                code_on_line = false;
            }
        };
    }

    while i < b.len() {
        let c = b[i] as char;
        mark_line!();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..j].to_string(),
                    after_code: code_on_line,
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let after = code_on_line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(i + 2);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[i + 2..end.min(src.len())].to_string(),
                    after_code: after,
                });
                i = j;
            }
            '"' => {
                let (j, nl) = scan_string(b, i + 1, 0);
                push_tok(&mut out, TokKind::Str, src, i, j, line);
                line += nl;
                i = j;
                code_on_line = true;
            }
            'r' | 'b' if starts_raw_or_byte_literal(b, i) => {
                let (kind, j, nl) = scan_prefixed_literal(b, src, i);
                push_tok(&mut out, kind, src, i, j, line);
                line += nl;
                i = j;
                code_on_line = true;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by something
                // other than a closing quote is a lifetime; `'a'`,
                // `'\n'`, `'\u{1F}'` are char literals.
                if is_lifetime_at(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    push_tok(&mut out, TokKind::Lifetime, src, i, j, line);
                    i = j;
                } else {
                    let (j, nl) = scan_char(b, i + 1);
                    push_tok(&mut out, TokKind::Char, src, i, j, line);
                    line += nl;
                    i = j;
                }
                code_on_line = true;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (is_ident_continue(b[j]) || b[j] == b'.') {
                    // A second dot ends the number (`0..8` is a range).
                    if b[j] == b'.' && b.get(j + 1) == Some(&b'.') {
                        break;
                    }
                    j += 1;
                }
                push_tok(&mut out, TokKind::Num, src, i, j, line);
                i = j;
                code_on_line = true;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                push_tok(&mut out, TokKind::Ident, src, i, j, line);
                i = j;
                code_on_line = true;
            }
            _ => {
                push_tok(&mut out, TokKind::Punct, src, i, i + c.len_utf8(), line);
                i += c.len_utf8();
                code_on_line = true;
            }
        }
    }
    out
}

fn push_tok(out: &mut Lexed, kind: TokKind, src: &str, lo: usize, hi: usize, line: usize) {
    out.tokens.push(Token {
        kind,
        text: src[lo..hi.min(src.len())].to_string(),
        line,
    });
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Scans past a `"`-terminated string body starting at `i` (after the
/// opening quote), honouring `\"` escapes; `hashes` raw-string fences
/// disable escapes. Returns (index past closing delimiter, newlines).
fn scan_string(b: &[u8], mut i: usize, hashes: usize) -> (usize, usize) {
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                nl += 1;
                i += 1;
            }
            b'\\' if hashes == 0 => {
                // A line-continuation escape still ends a source line.
                if b.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => {
                if hashes == 0 {
                    return (i + 1, nl);
                }
                let mut k = 0usize;
                while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return (i + 1 + hashes, nl);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// Scans a char/byte-char body starting after the opening `'`.
fn scan_char(b: &[u8], mut i: usize) -> (usize, usize) {
    let mut nl = 0usize;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// True when `b[i..]` opens a raw string (`r"`, `r#`), byte string
/// (`b"`, `br`), or byte char (`b'`).
fn starts_raw_or_byte_literal(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(
            (b.get(i + 1), b.get(i + 2)),
            (Some(b'"'), _)
                | (Some(b'\''), _)
                | (Some(b'r'), Some(b'"'))
                | (Some(b'r'), Some(b'#'))
        ),
        _ => false,
    }
}

/// Scans one `r…`/`b…` literal at `i`; the caller verified the prefix.
fn scan_prefixed_literal(b: &[u8], _src: &str, i: usize) -> (TokKind, usize, usize) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        let (end, nl) = scan_char(b, j + 1);
        return (TokKind::Char, end, nl);
    }
    let mut hashes = 0usize;
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    // `j` now sits on the opening quote.
    let (end, nl) = scan_string(b, j + 1, hashes);
    (TokKind::Str, end, nl)
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) at `i`
/// (which holds the `'`).
fn is_lifetime_at(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(&c) if c.is_ascii_alphabetic() || c == b'_' => {
            // A lifetime's ident run is not followed by a closing quote.
            let mut j = i + 2;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            b.get(j) != Some(&b'\'')
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_hide_tokens() {
        let lx =
            lex("let s = \"unwrap() // not a comment\"; // trailing\n/* unwrap() */ let t = 1;");
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].after_code);
        assert!(!lx.comments[1].after_code);
    }

    #[test]
    fn raw_strings_with_fences() {
        let lx = lex("let s = r#\"has \"quotes\" and unwrap()\"#; x.unwrap();");
        let unwraps: Vec<_> = lx.tokens.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lx = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1
        );
    }

    #[test]
    fn byte_strings_and_magics() {
        let lx = lex("pub const M: [u8; 8] = *b\"FGRVPROF\";");
        let s = lx.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "b\"FGRVPROF\"");
    }

    #[test]
    fn nested_block_comments() {
        let lx = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(lx.tokens[0].is_ident("fn"));
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn lines_are_tracked_across_multiline_strings() {
        let lx = lex("let s = \"a\nb\nc\";\nfn g() {}");
        let g = lx.tokens.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 4);
    }
}
