//! The five FinGraV invariant rule classes.
//!
//! Each rule walks the token stream of [`crate::lexer::lex`] plus the
//! per-line comment map; none of them needs a full AST. The rules are
//! deliberately *deny-by-default*: anything they flag is a hard finding
//! unless a committed allowlist / registry entry argues it away (see
//! `docs/ANALYSIS.md` for which rules are suppressible and why).

use crate::lexer::{TokKind, Token};
use crate::{Diagnostic, FileCtx};

/// Identifiers that can never be the base of an index expression when
/// they appear directly before `[` (they are keywords, so `kw [...]`
/// is a slice pattern or array type, not indexing).
const NON_BASE_KEYWORDS: &[&str] = &[
    "let", "in", "as", "mut", "ref", "return", "break", "continue", "move", "else", "match", "if",
    "while", "for", "loop", "unsafe", "box", "dyn", "impl", "where", "type", "const", "static",
    "fn", "pub", "use", "mod", "crate", "super", "enum", "struct", "trait", "await", "yield",
];

/// Length-derived identifiers: a truncating `as` cast whose operand is
/// one of these (or a call to one of [`LENISH_CALLEES`]) is flagged.
const LENISH_IDENTS: &[&str] = &[
    "len", "length", "size", "count", "total", "entries", "elems",
];

/// Callee names whose results are length-derived.
const LENISH_CALLEES: &[&str] = &["len", "decode", "read_u64", "from_value", "size", "count"];

/// Target types an `as` cast can truncate a length into.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Atomic memory-ordering variants (distinguishes `Ordering::Acquire`
/// from `std::cmp::Ordering::Equal`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn diag(ctx: &FileCtx<'_>, rule: &'static str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        file: ctx.rel_path.clone(),
        line,
        snippet: ctx.line_text(line).trim().to_string(),
        message,
    }
}

// ---------------------------------------------------------------------
// Rule 1: codec hygiene
// ---------------------------------------------------------------------

/// In decoder modules (profile store, checkpoint, transport, mmap),
/// non-test code must stay panic-free on untrusted input: no
/// `unwrap`/`expect`/`panic!`/`unreachable!`, no direct slice indexing,
/// and no truncating `as` casts on length-derived values — the bounded
/// read helpers and checked conversions exist for exactly this.
pub fn codec_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.is_decoder || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_region(t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let after_dot = i > 0 && toks[i - 1].is_punct('.');
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if after_dot && called {
                    out.push(diag(
                        ctx,
                        "codec-hygiene",
                        t.line,
                        format!(
                            "`.{}()` in a decoder module: return the typed codec error instead \
                             (or allowlist with a proof of infallibility)",
                            t.text
                        ),
                    ));
                }
            }
            TokKind::Ident
                if (t.text == "panic" || t.text == "unreachable")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(diag(
                    ctx,
                    "codec-hygiene",
                    t.line,
                    format!(
                        "`{}!` in a decoder module: decoders must fail with a typed error, \
                         never a panic",
                        t.text
                    ),
                ));
            }
            TokKind::Punct if t.text == "[" && is_index_expression(toks, i) => {
                out.push(diag(
                    ctx,
                    "codec-hygiene",
                    t.line,
                    "direct slice indexing in a decoder module: use a bounded-read helper \
                     (`get`/`split_at_checked`-based) so corrupt offsets become typed errors"
                        .to_string(),
                ));
            }
            TokKind::Ident if t.text == "as" => {
                if let Some(target) = truncating_cast_target(toks, i) {
                    out.push(diag(
                        ctx,
                        "codec-hygiene",
                        t.line,
                        format!(
                            "truncating `as {target}` cast on a length-derived value: use \
                             `try_from`/a checked helper so oversized lengths become typed errors"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// True when the `[` at `toks[i]` opens an index expression: the
/// previous token is a non-keyword identifier, `)`, or `]` (array
/// types, slice patterns, attributes, and `vec![…]` all have a
/// different preceding token).
fn is_index_expression(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !NON_BASE_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Punct => prev.text == ")" || prev.text == "]",
        _ => false,
    }
}

/// When `toks[i]` is the `as` of a flagged truncating cast, returns the
/// target type name. The operand is length-derived when (skipping one
/// `?`) it is a [`LENISH_IDENTS`] identifier, or a `(…)` call whose
/// callee is in [`LENISH_CALLEES`].
fn truncating_cast_target(toks: &[Token], i: usize) -> Option<&'static str> {
    let next = toks.get(i + 1)?;
    let target = NARROW_TARGETS.iter().find(|t| next.is_ident(t)).copied()?;
    let mut p = i.checked_sub(1)?;
    if toks[p].is_punct('?') {
        p = p.checked_sub(1)?;
    }
    if toks[p].kind == TokKind::Ident {
        if LENISH_IDENTS.contains(&toks[p].text.as_str()) {
            return Some(target);
        }
        return None;
    }
    if toks[p].is_punct(')') {
        // Walk back to the matching `(` and read the callee name.
        let mut depth = 1usize;
        let mut q = p;
        while depth > 0 {
            q = q.checked_sub(1)?;
            if toks[q].is_punct(')') {
                depth += 1;
            } else if toks[q].is_punct('(') {
                depth -= 1;
            }
        }
        let callee = q.checked_sub(1).map(|c| &toks[c])?;
        if callee.kind == TokKind::Ident && LENISH_CALLEES.contains(&callee.text.as_str()) {
            return Some(target);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule 2: unsafe audit
// ---------------------------------------------------------------------

/// An `unsafe` site found in a scanned file.
#[derive(Debug)]
pub struct UnsafeSite {
    /// Repo-relative file.
    pub file: String,
    /// 1-indexed line of the `unsafe` keyword.
    pub line: usize,
    /// Trimmed text of that line (what registry entries match on).
    pub snippet: String,
}

/// Every `unsafe` keyword must carry an adjacent `// SAFETY:` comment
/// (within the five lines above it) and is collected for the registry
/// cross-check in [`crate::run`].
pub fn unsafe_audit(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>, sites: &mut Vec<UnsafeSite>) {
    for t in &ctx.lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        sites.push(UnsafeSite {
            file: ctx.rel_path.clone(),
            line: t.line,
            snippet: ctx.line_text(t.line).trim().to_string(),
        });
        let lo = t.line.saturating_sub(5);
        if !ctx.lexed.comment_in_lines_contains(lo, t.line, "SAFETY:") {
            out.push(diag(
                ctx,
                "unsafe-audit",
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment: state the soundness \
                 argument directly above the unsafe site"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: atomics discipline
// ---------------------------------------------------------------------

/// Every atomic `Ordering::` use in non-test code is a finding unless a
/// committed allowlist entry documents its happens-before argument —
/// abort flags, queue counters, and override cells each have one.
pub fn atomics_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Ordering") || ctx.in_test_region(t.line) {
            continue;
        }
        let path = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'));
        let Some(variant) = toks.get(i + 3) else {
            continue;
        };
        if path && ATOMIC_ORDERINGS.iter().any(|v| variant.is_ident(v)) {
            out.push(diag(
                ctx,
                "atomics-discipline",
                t.line,
                format!(
                    "`Ordering::{}` outside the allowlist: add a lint-allow.toml entry whose \
                     justification states the happens-before argument",
                    variant.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 4: format-constant consistency
// ---------------------------------------------------------------------

/// A format constant extracted from source.
#[derive(Debug, Clone)]
pub struct FormatConst {
    /// Constant name (`STORE_MAGIC`, `TAG_HELLO`, ...).
    pub name: String,
    /// Its value.
    pub value: ConstVal,
    /// Repo-relative defining file.
    pub file: String,
    /// 1-indexed line of the `const` keyword.
    pub line: usize,
}

/// Value of a format constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstVal {
    /// A byte-string magic (`*b"FGRVPROF"`).
    Bytes(Vec<u8>),
    /// An integer (version, tag, limit).
    Int(u64),
}

/// Extracts `MAGIC`/`VERSION`/`TAG_*`/`SECTION_*`/`MAX_*`
/// constants from a file's non-test code.
pub fn extract_format_consts(ctx: &FileCtx<'_>, out: &mut Vec<FormatConst>) {
    if ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("const") || ctx.in_test_region(t.line) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        let name = &name_tok.text;
        let interesting = name.ends_with("_MAGIC")
            || name.ends_with("_VERSION")
            || name.starts_with("TAG_")
            || name.starts_with("SECTION_")
            || name.starts_with("MAX_");
        if name_tok.kind != TokKind::Ident || !interesting {
            continue;
        }
        let Some(eq) = toks[i..].iter().position(|t| t.is_punct('=')) else {
            continue;
        };
        let val_toks: Vec<&Token> = toks[i + eq + 1..]
            .iter()
            .take_while(|t| !t.is_punct(';'))
            .collect();
        if let Some(value) = parse_const_value(&val_toks) {
            out.push(FormatConst {
                name: name.clone(),
                value,
                file: ctx.rel_path.clone(),
                line: t.line,
            });
        }
    }
}

/// Parses the right-hand side of a format constant: `*b"…"`, an integer
/// literal, `a << b`, or `u32::MAX` (with an optional cast). Anything
/// else is ignored (not every constant matching the name filter is
/// checkable).
fn parse_const_value(toks: &[&Token]) -> Option<ConstVal> {
    match toks {
        // `u32::MAX as usize` — the decode-cap idiom (`MAX_SEQ_LEN`).
        [t, c1, c2, m, ..]
            if t.is_ident("u32") && c1.is_punct(':') && c2.is_punct(':') && m.is_ident("MAX") =>
        {
            Some(ConstVal::Int(u64::from(u32::MAX)))
        }
        [star, s] if star.is_punct('*') && s.kind == TokKind::Str => {
            byte_string_value(&s.text).map(ConstVal::Bytes)
        }
        [s] if s.kind == TokKind::Str => byte_string_value(&s.text).map(ConstVal::Bytes),
        [n] if n.kind == TokKind::Num => int_value(&n.text).map(ConstVal::Int),
        [a, l1, l2, b]
            if a.kind == TokKind::Num
                && l1.is_punct('<')
                && l2.is_punct('<')
                && b.kind == TokKind::Num =>
        {
            let base = int_value(&a.text)?;
            let shift = int_value(&b.text)?;
            base.checked_shl(u32::try_from(shift).ok()?)
                .map(ConstVal::Int)
        }
        _ => None,
    }
}

/// Decodes a simple `b"…"` literal (no escapes — magics are plain
/// ASCII) to its bytes.
fn byte_string_value(text: &str) -> Option<Vec<u8>> {
    let body = text.strip_prefix("b\"")?.strip_suffix('"')?;
    if body.contains('\\') {
        return None;
    }
    Some(body.as_bytes().to_vec())
}

/// Parses an integer literal with optional `0x` prefix, `_` separators,
/// and a type suffix.
fn int_value(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (digits, radix) = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (t.as_str(), 10),
    };
    let digits = digits.trim_end_matches(|c: char| c.is_ascii_alphabetic() && radix == 10);
    // Strip `u32`/`u64`-style suffixes from hex too (cannot confuse with
    // hex digits once a non-hex letter appears).
    let digits = match digits.find(|c: char| !c.is_digit(radix)) {
        Some(pos) => &digits[..pos],
        None => digits,
    };
    u64::from_str_radix(digits, radix).ok()
}

/// A parsed `| n | `Name` |` table row from the formats doc.
#[derive(Debug)]
struct DocRow {
    number: u64,
    name: String,
}

/// Cross-checks the extracted constants against the formats document
/// and the committed golden fixtures.
pub fn check_format_consts(
    consts: &[FormatConst],
    doc: Option<&str>,
    doc_rel: &str,
    fixtures: &[(String, Vec<u8>)],
    out: &mut Vec<Diagnostic>,
) {
    let mut push = |file: &str, line: usize, message: String| {
        out.push(Diagnostic {
            rule: "format-constants",
            file: file.to_string(),
            line,
            snippet: String::new(),
            message,
        });
    };

    // Duplicate definitions with different values are drift by
    // definition.
    for (i, a) in consts.iter().enumerate() {
        for b in &consts[i + 1..] {
            if a.name == b.name && a.value != b.value {
                push(
                    &b.file,
                    b.line,
                    format!(
                        "`{}` is defined with a different value in {} (line {})",
                        b.name, a.file, a.line
                    ),
                );
            }
        }
    }

    let Some(doc) = doc else {
        if !consts.is_empty() {
            push(
                doc_rel,
                0,
                "format constants exist in source but the formats document is missing".to_string(),
            );
        }
        return;
    };
    let rows = parse_doc_rows(doc);

    for c in consts {
        match (c.name.as_str(), &c.value) {
            (name, ConstVal::Bytes(bytes)) if name.ends_with("_MAGIC") => {
                if let Ok(ascii) = std::str::from_utf8(bytes) {
                    if !doc.contains(ascii) {
                        push(
                            doc_rel,
                            0,
                            format!("doc never names the `{ascii}` magic ({name})"),
                        );
                    }
                }
                let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02X}")).collect();
                if !doc.contains(&hex.join(" ")) {
                    push(
                        doc_rel,
                        0,
                        format!(
                            "doc never spells out the `{name}` bytes ({}); the layout table \
                             must show them",
                            hex.join(" ")
                        ),
                    );
                }
                // The format-summary row must cite the version constant
                // paired with this magic (same `X_` prefix).
                if let (Ok(ascii), Some(version)) =
                    (std::str::from_utf8(bytes), paired_version(consts, name))
                {
                    let cited = doc.lines().any(|l| {
                        l.contains(&format!("`{ascii}`")) && first_numeric_cell(l) == Some(version)
                    });
                    if !cited {
                        push(
                            doc_rel,
                            0,
                            format!(
                                "no doc table row pairs the `{ascii}` magic with version \
                                 {version}"
                            ),
                        );
                    }
                }
            }
            (name, ConstVal::Int(v)) if name.starts_with("TAG_") => {
                let suffix: String = name["TAG_".len()..].replace('_', "");
                match rows
                    .iter()
                    .find(|r| r.name.replace('_', "").eq_ignore_ascii_case(&suffix))
                {
                    Some(row) if row.number == *v => {}
                    Some(row) => push(
                        doc_rel,
                        0,
                        format!(
                            "doc frame table gives `{}` tag {} but source says {v} ({name})",
                            row.name, row.number
                        ),
                    ),
                    None => push(
                        doc_rel,
                        0,
                        format!("doc frame table has no row for `{name}` (tag {v})"),
                    ),
                }
            }
            (name, ConstVal::Int(v)) if name.starts_with("SECTION_") => {
                let word = name["SECTION_".len()..].to_ascii_lowercase();
                if !doc.contains(&format!("{v} = {word}")) {
                    push(
                        doc_rel,
                        0,
                        format!("doc never states `{v} = {word}` for section tag {name}"),
                    );
                }
            }
            (name, ConstVal::Int(v)) if name.starts_with("MAX_") => {
                // Decode caps may be spelled `2^n`, `1 << n`, `u32::MAX`,
                // or in plain decimal — any of them pins the value.
                let spellings: Vec<String> = if v.is_power_of_two() {
                    vec![
                        format!("2^{}", v.trailing_zeros()),
                        format!("1 << {}", v.trailing_zeros()),
                    ]
                } else if *v == u64::from(u32::MAX) {
                    vec!["u32::MAX".to_string(), format!("{v}")]
                } else {
                    vec![format!("{v}")]
                };
                if !spellings.iter().any(|s| doc.contains(s.as_str())) {
                    push(
                        doc_rel,
                        0,
                        format!(
                            "doc never states the `{name}` cap (accepted spellings: {})",
                            spellings.join(", ")
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // Reverse direction: a doc row naming a known tag must agree with
    // the source value (catches the doc drifting ahead of the code).
    for row in &rows {
        let tag_name = format!("TAG_{}", row.name.to_ascii_uppercase());
        if let Some(c) = consts.iter().find(|c| c.name == tag_name) {
            if c.value != ConstVal::Int(row.number) {
                push(
                    doc_rel,
                    0,
                    format!(
                        "doc row `{}` = {} disagrees with {} in {} (line {})",
                        row.name, row.number, tag_name, c.file, c.line
                    ),
                );
            }
        }
    }

    // Golden fixtures must open with the documented magic, version, and
    // a declared section tag.
    let sections: Vec<u64> = consts
        .iter()
        .filter(|c| c.name.starts_with("SECTION_"))
        .filter_map(|c| match c.value {
            ConstVal::Int(v) => Some(v),
            ConstVal::Bytes(_) => None,
        })
        .collect();
    for (name, bytes) in fixtures {
        let (magic_name, version_name, expect_section) = if name.ends_with(".fgrvckpt") {
            ("CKPT_MAGIC", "CKPT_VERSION", true)
        } else {
            ("STORE_MAGIC", "STORE_VERSION", false)
        };
        let Some(magic) = find_const_bytes(consts, magic_name) else {
            continue;
        };
        if bytes.len() < 16 {
            push(name, 0, "fixture is shorter than one header".to_string());
            continue;
        }
        if bytes[0..8] != magic[..] {
            push(
                name,
                0,
                format!("fixture magic does not match {magic_name}"),
            );
        }
        if let Some(version) = find_const_int(consts, version_name) {
            let got = u64::from(u32::from_le_bytes([
                bytes[8], bytes[9], bytes[10], bytes[11],
            ]));
            if got != version {
                push(
                    name,
                    0,
                    format!("fixture claims version {got} but {version_name} is {version}"),
                );
            }
        }
        if expect_section && !sections.is_empty() {
            let got = u64::from(u32::from_le_bytes([
                bytes[12], bytes[13], bytes[14], bytes[15],
            ]));
            if !sections.contains(&got) {
                push(
                    name,
                    0,
                    format!("fixture section tag {got} is not a declared SECTION_* value"),
                );
            }
        }
    }
}

/// The `X_VERSION` integer paired with `X_MAGIC`, if declared.
fn paired_version(consts: &[FormatConst], magic_name: &str) -> Option<u64> {
    let prefix = magic_name.strip_suffix("MAGIC")?;
    find_const_int(consts, &format!("{prefix}VERSION"))
}

fn find_const_bytes<'a>(consts: &'a [FormatConst], name: &str) -> Option<&'a [u8]> {
    consts.iter().find_map(|c| match (&c.name, &c.value) {
        (n, ConstVal::Bytes(b)) if n == name => Some(b.as_slice()),
        _ => None,
    })
}

fn find_const_int(consts: &[FormatConst], name: &str) -> Option<u64> {
    consts.iter().find_map(|c| match (&c.name, &c.value) {
        (n, ConstVal::Int(v)) if n == name => Some(*v),
        _ => None,
    })
}

/// Parses markdown table rows whose first cell is a number and whose
/// second cell is a backticked name — the frame-tag table shape.
fn parse_doc_rows(doc: &str) -> Vec<DocRow> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let trimmed = line.trim();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 2 {
            continue;
        }
        let Ok(number) = cells[0].parse::<u64>() else {
            continue;
        };
        let Some(name) = cells[1].strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
            continue;
        };
        rows.push(DocRow {
            number,
            name: name.to_string(),
        });
    }
    rows
}

/// First `|`-cell of `line` that parses as an integer, if any.
fn first_numeric_cell(line: &str) -> Option<u64> {
    line.trim()
        .trim_matches('|')
        .split('|')
        .map(str::trim)
        .find_map(|c| c.parse::<u64>().ok())
}

// ---------------------------------------------------------------------
// Rule 5: annotation hygiene
// ---------------------------------------------------------------------

/// `#[allow(...)]`, `#[expect(...)]`, and bare `#[ignore]` require a
/// trailing justification comment on the same line
/// (`#[ignore = "reason"]` is self-justifying).
pub fn annotation_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Scan the attribute to its closing `]`, looking for the lint
        // suppressions (covers `cfg_attr(…, allow(…))` too).
        let mut depth = 0usize;
        let mut needs = None;
        let mut self_justified = false;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "allow" | "expect" => needs = Some(t.text.clone()),
                    "ignore" => {
                        needs = Some(t.text.clone());
                        self_justified = toks.get(k + 1).is_some_and(|n| n.is_punct('='));
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        if let Some(attr) = needs {
            if !self_justified && ctx.lexed.trailing_comment(toks[i].line).is_none() {
                out.push(diag(
                    ctx,
                    "annotation-hygiene",
                    toks[i].line,
                    format!(
                        "`#[{attr}(…)]` without a trailing justification comment: say why the \
                         suppressed lint does not apply"
                    ),
                ));
            }
        }
        i = k.max(i + 1);
    }
}
