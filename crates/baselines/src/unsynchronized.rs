//! The *unsynchronized* baseline (the red profile in the paper's Fig. 5).
//!
//! A naive user who ignores challenge **C2** assumes the power-log stream
//! is aligned with their host-side events: "log *k* was taken *k* logging
//! periods after my launch". In reality the logger free-runs on its own
//! grid, the run starts at a random phase within that grid, and the random
//! pre-launch delay moves the kernel within the run — so naive placement
//! smears every run's profile by up to a couple of logging periods, missing
//! the power ramp and mis-attributing power changes to the wrong
//! executions.

use fingrav_core::backend::PowerBackend;
use fingrav_core::error::MethodologyResult;
use fingrav_core::profile::{PowerProfile, ProfileKind, ProfilePoint};
use fingrav_sim::kernel::{KernelDesc, KernelHandle};

use crate::common::{collect_run, BaselineConfig};

/// Collects a run profile with naive (unsynchronized) log placement.
///
/// # Errors
///
/// Propagates backend errors.
pub fn profile<B: PowerBackend>(
    backend: &mut B,
    desc: &KernelDesc,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let kernel = backend.register_kernel(desc)?;
    profile_handle(backend, kernel, &desc.name, cfg)
}

/// Same as [`profile`] for an already-registered kernel.
///
/// # Errors
///
/// Propagates backend errors.
pub fn profile_handle<B: PowerBackend>(
    backend: &mut B,
    kernel: KernelHandle,
    label: &str,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let period_ns = backend.logger_window().as_nanos() as f64;
    let mut out = PowerProfile::new(label, ProfileKind::Custom("unsynchronized".into()));
    for run in 0..cfg.runs {
        let trace = collect_run(backend, kernel, cfg, false, false)?;
        // Naive placement: pretend log k fired k periods after the launch.
        for (k, log) in trace.power_logs.iter().enumerate() {
            out.push(ProfilePoint {
                run,
                exec_pos: None,
                toi_ns: None,
                run_time_ns: k as f64 * period_ns,
                power: log.avg,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel() -> KernelDesc {
        KernelDesc {
            name: "unsync-k".into(),
            base_exec: SimDuration::from_micros(150),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 128,
        }
    }

    #[test]
    fn collects_points_on_a_rigid_grid() {
        let mut sim = Simulation::new(SimConfig::default(), 9).unwrap();
        let cfg = BaselineConfig {
            runs: 4,
            executions_per_run: 10,
            ..BaselineConfig::default()
        };
        let p = profile(&mut sim, &kernel(), &cfg).unwrap();
        assert!(!p.is_empty());
        // All x positions are integer multiples of the logging period.
        for x in p.store.run_times_ns() {
            let k = x / 1e6;
            assert!((k - k.round()).abs() < 1e-9, "x {x}");
        }
        assert!(matches!(p.kind, ProfileKind::Custom(_)));
    }
}
