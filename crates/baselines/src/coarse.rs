//! The coarse-sampler baseline (challenge **C1**).
//!
//! External tools like `amd-smi` sample power at tens of milliseconds.
//! For sub-millisecond kernels such a sampler can "completely miss sampling
//! power for a given kernel" (paper Fig. 3a): most runs contribute zero
//! logs, and the few logs collected average the kernel with long idle
//! stretches. This baseline quantifies both failure modes.

use fingrav_core::backend::PowerBackend;
use fingrav_core::error::MethodologyResult;
use fingrav_sim::kernel::{KernelDesc, KernelHandle};
use serde::{Deserialize, Serialize};

use crate::common::{collect_run, BaselineConfig};

/// What the coarse sampler managed to observe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseOutcome {
    /// Total runs executed.
    pub runs: u32,
    /// Runs during which the coarse logger emitted at least one sample.
    pub runs_with_any_log: u32,
    /// Total coarse logs collected.
    pub total_logs: u32,
    /// Mean total power over the collected logs, if any.
    pub mean_total_w: Option<f64>,
}

impl CoarseOutcome {
    /// Fraction of runs that produced no power sample at all.
    pub fn miss_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            1.0 - self.runs_with_any_log as f64 / self.runs as f64
        }
    }
}

/// Profiles a kernel with the coarse (amd-smi-like) sampler.
///
/// # Errors
///
/// Propagates backend errors.
pub fn profile<B: PowerBackend>(
    backend: &mut B,
    desc: &KernelDesc,
    cfg: &BaselineConfig,
) -> MethodologyResult<CoarseOutcome> {
    let kernel = backend.register_kernel(desc)?;
    profile_handle(backend, kernel, cfg)
}

/// Same as [`profile`] for an already-registered kernel.
///
/// # Errors
///
/// Propagates backend errors.
pub fn profile_handle<B: PowerBackend>(
    backend: &mut B,
    kernel: KernelHandle,
    cfg: &BaselineConfig,
) -> MethodologyResult<CoarseOutcome> {
    let mut runs_with_any_log = 0;
    let mut total_logs = 0u32;
    let mut power_sum = 0.0;
    for _ in 0..cfg.runs {
        let trace = collect_run(backend, kernel, cfg, false, true)?;
        if !trace.coarse_logs.is_empty() {
            runs_with_any_log += 1;
        }
        for log in &trace.coarse_logs {
            total_logs += 1;
            power_sum += log.avg.total();
        }
    }
    Ok(CoarseOutcome {
        runs: cfg.runs,
        runs_with_any_log,
        total_logs,
        mean_total_w: if total_logs > 0 {
            Some(power_sum / total_logs as f64)
        } else {
            None
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn short_kernel() -> KernelDesc {
        KernelDesc {
            name: "short".into(),
            base_exec: SimDuration::from_micros(50),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 64,
        }
    }

    #[test]
    fn coarse_sampler_misses_short_kernels() {
        let mut sim = Simulation::new(SimConfig::default(), 33).unwrap();
        let cfg = BaselineConfig {
            runs: 10,
            executions_per_run: 10,
            ..BaselineConfig::default()
        };
        let outcome = profile(&mut sim, &short_kernel(), &cfg).unwrap();
        assert_eq!(outcome.runs, 10);
        // A ~2 ms busy window against a 50 ms sampler: most runs see no log.
        assert!(
            outcome.miss_rate() > 0.5,
            "miss rate {} should be high",
            outcome.miss_rate()
        );
    }

    #[test]
    fn miss_rate_of_zero_runs_is_zero() {
        let o = CoarseOutcome {
            runs: 0,
            runs_with_any_log: 0,
            total_logs: 0,
            mean_total_w: None,
        };
        assert_eq!(o.miss_rate(), 0.0);
    }
}
