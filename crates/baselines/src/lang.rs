//! A Lang & Rünger-style profiler (Euro-Par 2013), per the paper's
//! related-work discussion.
//!
//! Lang et al. built high-resolution power profiles from low-resolution
//! measurements and synchronized CPU and GPU clocks with repeated reads —
//! but "did not factor in the delays imposed by the CPU-GPU communication",
//! and FinGraV's authors additionally observed clock *drift* that repeated
//! anchoring alone does not remove. This baseline reproduces those two
//! omissions: single-anchor sync at the *nominal* counter rate with an
//! assumed-zero read delay.

use fingrav_core::backend::PowerBackend;
use fingrav_core::error::{MethodologyError, MethodologyResult};
use fingrav_core::profile::{place_logs, push_run_profile_points, PowerProfile, ProfileKind};
use fingrav_core::sync::{ReadDelayCalibration, TimeSync};
use fingrav_sim::kernel::{KernelDesc, KernelHandle};

use crate::common::{collect_run, BaselineConfig};

/// The sync policy of this baseline: anchor on the read's *issue* time
/// (zero assumed delay) at the nominal counter rate.
pub fn lang_sync<B: PowerBackend>(
    backend: &B,
    trace: &fingrav_sim::trace::RunTrace,
) -> MethodologyResult<TimeSync> {
    let read = trace
        .timestamp_reads
        .first()
        .ok_or(MethodologyError::InsufficientSyncData)?;
    let zero_delay = ReadDelayCalibration {
        median_rtt_ns: 0,
        assumed_sample_frac: 0.0,
    };
    Ok(TimeSync::from_anchor(
        read,
        &zero_delay,
        backend.gpu_counter_hz(),
    ))
}

/// Collects a run profile with Lang-style sync (no delay accounting, no
/// drift correction, no binning — every run is kept).
///
/// # Errors
///
/// Propagates backend errors; fails if a run has no timestamp read.
pub fn profile<B: PowerBackend>(
    backend: &mut B,
    desc: &KernelDesc,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let kernel = backend.register_kernel(desc)?;
    profile_handle(backend, kernel, &desc.name, cfg)
}

/// Same as [`profile`] for an already-registered kernel.
///
/// # Errors
///
/// Propagates backend errors; fails if a run has no timestamp read.
pub fn profile_handle<B: PowerBackend>(
    backend: &mut B,
    kernel: KernelHandle,
    label: &str,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let mut out = PowerProfile::new(label, ProfileKind::Custom("lang".into()));
    for run in 0..cfg.runs {
        let trace = collect_run(backend, kernel, cfg, true, false)?;
        let sync = lang_sync(backend, &trace)?;
        let placed = place_logs(&trace, &sync);
        push_run_profile_points(&mut out.store, run, &placed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel() -> KernelDesc {
        KernelDesc {
            name: "lang-k".into(),
            base_exec: SimDuration::from_micros(150),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 128,
        }
    }

    #[test]
    fn produces_a_profile_without_binning() {
        let mut sim = Simulation::new(SimConfig::default(), 21).unwrap();
        let cfg = BaselineConfig {
            runs: 4,
            executions_per_run: 8,
            ..BaselineConfig::default()
        };
        let p = profile(&mut sim, &kernel(), &cfg).unwrap();
        assert!(!p.is_empty());
    }

    #[test]
    fn lang_sync_biased_by_read_delay() {
        // Compared against a properly calibrated sync, the Lang anchor is
        // late by roughly the sample delay of the timestamp read.
        let mut sim = Simulation::new(SimConfig::default(), 22).unwrap();
        let k = PowerBackend::register_kernel(&mut sim, &kernel()).unwrap();
        let cfg = BaselineConfig {
            runs: 1,
            executions_per_run: 4,
            ..BaselineConfig::default()
        };
        let trace = collect_run(&mut sim, k, &cfg, true, false).unwrap();
        let read = trace.timestamp_reads[0];
        let lang = lang_sync(&sim, &trace).unwrap();
        let calibrated = TimeSync::from_anchor(
            &read,
            &ReadDelayCalibration {
                median_rtt_ns: read.rtt_ns(),
                assumed_sample_frac: 0.5,
            },
            PowerBackend::gpu_counter_hz(&sim),
        );
        let t = read.ticks.as_raw();
        let bias = calibrated.cpu_ns_of_ticks(t) - lang.cpu_ns_of_ticks(t);
        assert!(bias > 0.0, "lang places logs too early by the read delay");
        assert!(
            (bias - read.rtt_ns() as f64 * 0.5).abs() < 1.0,
            "bias {bias} vs half-rtt {}",
            read.rtt_ns() as f64 * 0.5
        );
    }
}
