//! Shared collection helpers for the baseline profilers.

use fingrav_core::backend::PowerBackend;
use fingrav_core::error::MethodologyResult;
use fingrav_sim::kernel::KernelHandle;
use fingrav_sim::script::Script;
use fingrav_sim::time::SimDuration;
use fingrav_sim::trace::RunTrace;

/// Common knobs shared by the baselines so comparisons against FinGraV run
/// under like-for-like conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Number of profiling runs.
    pub runs: u32,
    /// Kernel executions per run.
    pub executions_per_run: u32,
    /// Upper bound of the random pre-launch delay (same as FinGraV's).
    pub random_delay_max: SimDuration,
    /// Idle time between runs.
    pub inter_run_idle: SimDuration,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            runs: 50,
            executions_per_run: 12,
            random_delay_max: SimDuration::from_millis(1),
            inter_run_idle: SimDuration::from_millis(8),
        }
    }
}

/// Executes one instrumented run. `with_ts_reads` controls whether the
/// script reads GPU timestamps (baselines that skip sync skip the reads),
/// `coarse` switches to the amd-smi-like coarse logger.
pub fn collect_run<B: PowerBackend>(
    backend: &mut B,
    kernel: KernelHandle,
    cfg: &BaselineConfig,
    with_ts_reads: bool,
    coarse: bool,
) -> MethodologyResult<RunTrace> {
    let window = backend.logger_window();
    let mut b = Script::builder().begin_run();
    b = if coarse {
        b.start_coarse_logger()
    } else {
        b.start_power_logger()
    };
    if with_ts_reads {
        b = b.read_gpu_timestamp();
    }
    b = b
        .sleep_uniform(SimDuration::ZERO, cfg.random_delay_max)
        .launch_timed(kernel, cfg.executions_per_run)
        .sleep(window + SimDuration::from_micros(100));
    if with_ts_reads {
        b = b.read_gpu_timestamp();
    }
    b = if coarse {
        b.stop_coarse_logger()
    } else {
        b.stop_power_logger()
    };
    let script = b.sleep(cfg.inter_run_idle).build();
    backend.run_script(&script)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::kernel::KernelDesc;
    use fingrav_sim::power::Activity;

    fn kernel() -> KernelDesc {
        KernelDesc {
            name: "k".into(),
            base_exec: SimDuration::from_micros(100),
            freq_insensitive_frac: 0.3,
            activity: Activity::new(0.7, 0.4, 0.3),
            compute_utilization: 0.6,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 64,
        }
    }

    #[test]
    fn fine_run_produces_logs_and_reads() {
        let mut sim = Simulation::new(SimConfig::default(), 5).unwrap();
        let k = PowerBackend::register_kernel(&mut sim, &kernel()).unwrap();
        let cfg = BaselineConfig {
            runs: 1,
            executions_per_run: 6,
            ..BaselineConfig::default()
        };
        let t = collect_run(&mut sim, k, &cfg, true, false).unwrap();
        assert_eq!(t.executions.len(), 6);
        assert_eq!(t.timestamp_reads.len(), 2);
        assert!(!t.power_logs.is_empty());
        assert!(t.coarse_logs.is_empty());
    }

    #[test]
    fn coarse_run_uses_coarse_logger() {
        let mut sim = Simulation::new(SimConfig::default(), 5).unwrap();
        let k = PowerBackend::register_kernel(&mut sim, &kernel()).unwrap();
        let cfg = BaselineConfig {
            runs: 1,
            executions_per_run: 6,
            ..BaselineConfig::default()
        };
        let t = collect_run(&mut sim, k, &cfg, false, true).unwrap();
        assert!(t.power_logs.is_empty());
        assert!(t.timestamp_reads.is_empty());
        // A short run rarely catches even one 50 ms coarse log.
        assert!(t.coarse_logs.len() <= 1);
    }
}
