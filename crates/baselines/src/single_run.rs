//! The single-run baseline (challenge **C3** motivation).
//!
//! With a 1 ms logger and a sub-millisecond kernel, "a single run is
//! insufficient to create fine-grain power profiles": one run yields at
//! most a couple of logs, all at arbitrary times-of-interest. This
//! baseline is FinGraV minus the multi-run stitching — properly
//! synchronized, but with exactly one run.

use fingrav_core::backend::PowerBackend;
use fingrav_core::error::MethodologyResult;
use fingrav_core::profile::{place_logs, push_run_profile_points, PowerProfile, ProfileKind};
use fingrav_core::sync::{ReadDelayCalibration, TimeSync};
use fingrav_sim::kernel::{KernelDesc, KernelHandle};

use crate::common::{collect_run, BaselineConfig};

/// Profiles a kernel from a single (synchronized) run.
///
/// # Errors
///
/// Propagates backend errors; fails without a timestamp read.
pub fn profile<B: PowerBackend>(
    backend: &mut B,
    desc: &KernelDesc,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let kernel = backend.register_kernel(desc)?;
    profile_handle(backend, kernel, &desc.name, cfg)
}

/// Same as [`profile`] for an already-registered kernel.
///
/// # Errors
///
/// Propagates backend errors; fails without a timestamp read.
pub fn profile_handle<B: PowerBackend>(
    backend: &mut B,
    kernel: KernelHandle,
    label: &str,
    cfg: &BaselineConfig,
) -> MethodologyResult<PowerProfile> {
    let trace = collect_run(backend, kernel, cfg, true, false)?;
    let reads = &trace.timestamp_reads;
    let first = reads
        .first()
        .ok_or(fingrav_core::error::MethodologyError::InsufficientSyncData)?;
    let calibration = ReadDelayCalibration {
        median_rtt_ns: first.rtt_ns(),
        assumed_sample_frac: 0.5,
    };
    let sync = TimeSync::from_anchor(first, &calibration, backend.gpu_counter_hz());
    let placed = place_logs(&trace, &sync);
    let mut out = PowerProfile::new(label, ProfileKind::Custom("single-run".into()));
    push_run_profile_points(&mut out.store, 0, &placed);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fingrav_sim::config::SimConfig;
    use fingrav_sim::engine::Simulation;
    use fingrav_sim::power::Activity;
    use fingrav_sim::time::SimDuration;

    fn kernel(us: u64) -> KernelDesc {
        KernelDesc {
            name: "single".into(),
            base_exec: SimDuration::from_micros(us),
            freq_insensitive_frac: 0.2,
            activity: Activity::new(0.9, 0.5, 0.4),
            compute_utilization: 0.7,
            flops: 1.0,
            hbm_bytes: 1.0,
            llc_bytes: 1.0,
            workgroups: 64,
        }
    }

    #[test]
    fn single_run_yields_sparse_profile() {
        let mut sim = Simulation::new(SimConfig::default(), 41).unwrap();
        let cfg = BaselineConfig {
            runs: 1,
            executions_per_run: 10,
            ..BaselineConfig::default()
        };
        let p = profile(&mut sim, &kernel(60), &cfg).unwrap();
        // A ~0.7 ms busy window plus ~1.1 ms of logger drain: a handful of
        // logs at best — nowhere near a fine-grain profile.
        assert!(p.len() <= 6, "{} points", p.len());
    }

    #[test]
    fn multi_run_fingrav_beats_single_run_loi_yield() {
        use fingrav_core::runner::{FingravRunner, RunnerConfig};

        let mut sim = Simulation::new(SimConfig::default(), 42).unwrap();
        let cfg = BaselineConfig {
            runs: 1,
            executions_per_run: 10,
            ..BaselineConfig::default()
        };
        let single = profile(&mut sim, &kernel(60), &cfg).unwrap();

        let mut sim2 = Simulation::new(SimConfig::default(), 42).unwrap();
        let mut runner = FingravRunner::new(&mut sim2, RunnerConfig::quick(30));
        let report = runner.profile(&kernel(60)).unwrap();
        assert!(
            report.ssp_profile.len() > single.len(),
            "fingrav {} vs single {}",
            report.ssp_profile.len(),
            single.len()
        );
    }
}
