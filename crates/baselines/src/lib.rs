//! # fingrav-baselines — the profiling strategies FinGraV improves upon
//!
//! Each baseline removes one of FinGraV's ingredients so its contribution
//! can be measured (paper Fig. 5 and Section VII):
//!
//! * [`unsynchronized`] — no CPU–GPU time sync (Fig. 5's red profile):
//!   logs placed on a naive host-relative grid smear the profile;
//! * [`lang`] — Lang & Rünger-style sync that ignores the timestamp-read
//!   delay and counter drift;
//! * [`coarse`] — an `amd-smi`-like tens-of-milliseconds sampler that
//!   mostly misses sub-millisecond kernels outright (challenge C1);
//! * [`single_run`] — correct sync but a single run: too few
//!   logs-of-interest for a fine-grain profile (challenge C3).
//!
//! All baselines run under the same conditions as the FinGraV runner
//! (same scripts, delays, and idle gaps) via [`common::BaselineConfig`].

// No unsafe anywhere in this crate; `fgrv-lint`'s unsafe-audit keeps it so.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coarse;
pub mod common;
pub mod lang;
pub mod single_run;
pub mod unsynchronized;

pub use coarse::CoarseOutcome;
pub use common::BaselineConfig;
