//! Extreme-scale kernels: the methodology must handle both a microsecond
//! blip and a many-window giant without special-casing.

use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{Activity, KernelDesc, SimConfig, SimDuration, Simulation};

fn kernel(name: &str, exec: SimDuration) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        base_exec: exec,
        freq_insensitive_frac: 0.6,
        activity: Activity::new(0.6, 0.4, 0.35),
        compute_utilization: 0.5,
        flops: 1e9,
        hbm_bytes: 1e6,
        llc_bytes: 1e7,
        workgroups: 64,
    }
}

#[test]
fn microsecond_blip_profiles() {
    // 2 us of work: launch overhead dominates and a single log covers
    // hundreds of executions, yet the pipeline completes with a plausible
    // plateau.
    let mut gpu = Simulation::new(SimConfig::default(), 401).expect("valid");
    let mut runner = FingravRunner::new(
        &mut gpu,
        RunnerConfig {
            // Cap the tail so runs stay short despite the hundreds of
            // executions the window formula asks for.
            tail_executions_cap: 32,
            ..RunnerConfig::quick(50)
        },
    );
    let report = runner
        .profile(&kernel("blip-2us", SimDuration::from_micros(2)))
        .expect("profiles a 2 us kernel");
    assert!(
        report.ssp_index >= 50,
        "a 2 us kernel needs very many executions, got {}",
        report.ssp_index
    );
    assert!(report.ssp_loi_count() > 0);
    let ssp = report.ssp_mean_total_w.expect("SSP measured");
    // Duty cycle ~25% (2 us work vs ~6 us launch overhead): well below a
    // saturated kernel but clearly above idle.
    assert!((200.0..600.0).contains(&ssp), "SSP {ssp} W");
}

#[test]
fn many_window_giant_profiles() {
    // 20 ms of work: twenty averaging windows per execution. SSE and SSP
    // coincide (the paper's "SSP and SSE profile can be the same" note)
    // and every execution carries many LOIs.
    let mut gpu = Simulation::new(SimConfig::default(), 402).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(10));
    let report = runner
        .profile(&kernel("giant-20ms", SimDuration::from_millis(20)))
        .expect("profiles a 20 ms kernel");
    assert!(
        report.ssp_index <= report.sse_index + 2,
        "SSP ({}) should sit at/near SSE ({}) for a many-window kernel",
        report.ssp_index,
        report.sse_index
    );
    let (sse, ssp) = (
        report.sse_mean_total_w.expect("SSE measured"),
        report.ssp_mean_total_w.expect("SSP measured"),
    );
    let gap = (ssp - sse).abs() / ssp;
    assert!(
        gap < 0.10,
        "SSE {sse:.0} W and SSP {ssp:.0} W should nearly coincide, gap {:.0}%",
        gap * 100.0
    );
    // Dozens of LOIs per run: the guidance's >1 ms row is easily met.
    assert!(
        report.ssp_loi_count() as u32
            >= report
                .guidance
                .recommended_lois(SimDuration::from_nanos(report.exec_time_ns))
                / 4,
        "LOI yield too low: {}",
        report.ssp_loi_count()
    );
}

#[test]
fn back_to_back_campaign_of_extremes() {
    // Both extremes through the campaign API, sharing one configuration.
    use fingrav::core::campaign::Campaign;
    let mut campaign = Campaign::new(RunnerConfig {
        tail_executions_cap: 32,
        ..RunnerConfig::quick(12)
    });
    campaign
        .add(kernel("blip-2us", SimDuration::from_micros(2)))
        .add(kernel("giant-20ms", SimDuration::from_millis(20)));
    let result = campaign
        .run(|i| Simulation::new(SimConfig::default(), 410 + i as u64).expect("valid"))
        .expect("campaign over extremes");
    assert_eq!(result.reports.len(), 2);
    assert_eq!(result.hottest().expect("hottest").label, "giant-20ms");
}
