//! Fault-injection suite for the cross-node campaign transport: workers
//! killed (gracefully and abruptly) at and inside every entry boundary,
//! adversarial wire peers, and local/remote checkpoint interoperability —
//! every path must end in artifacts byte-identical to a single-node
//! serial run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use fingrav::core::backend::{FnBackendFactory, SimulationFactory};
use fingrav::core::campaign::{Campaign, CampaignReport};
use fingrav::core::checkpoint::{gather, CheckpointDir};
use fingrav::core::error::MethodologyError;
use fingrav::core::executor::{
    CampaignExecutor, CampaignObserver, CancellationToken, ErrorPolicy, NoopCampaignObserver,
};
use fingrav::core::profile::ProfileAxis;
use fingrav::core::report::profile_to_csv;
use fingrav::core::runner::{KernelPowerReport, RunnerConfig};
use fingrav::core::transport::{
    connect_with_retry, read_preamble, work, write_preamble, CampaignPhase, CampaignService,
    Coordinator, Frame, ServiceConfig, TransportError, WorkerOptions, DENY_DIGEST_MISMATCH,
    DENY_SEQUENCE_EARLY, DENY_SEQUENCE_PASSED, WIRE_MAGIC,
};
use fingrav::sim::config::SimConfig;
use fingrav::sim::engine::Simulation;
use fingrav::sim::kernel::KernelDesc;
use fingrav::sim::power::Activity;
use fingrav::sim::time::SimDuration;

fn kernel(name: &str, us: u64, xcd: f64) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        base_exec: SimDuration::from_micros(us),
        freq_insensitive_frac: 0.5,
        activity: Activity::new(xcd, 0.4, 0.3),
        compute_utilization: xcd * 0.7,
        flops: 1e10,
        hbm_bytes: 1e7,
        llc_bytes: 1e8,
        workgroups: 128,
    }
}

fn campaign_of(n: usize) -> Campaign {
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    for i in 0..n {
        campaign.add(kernel(
            &format!("k{i}"),
            110 + 35 * i as u64,
            0.4 + 0.1 * i as f64,
        ));
    }
    campaign
}

fn factory() -> SimulationFactory {
    SimulationFactory::new(SimConfig::default(), 0x7EA7)
}

/// Every CSV artefact the bench layer would render from a report.
fn csvs_of(report: &CampaignReport) -> Vec<String> {
    report
        .reports
        .iter()
        .flat_map(|r| {
            vec![
                profile_to_csv(&r.run_profile, ProfileAxis::RunTime),
                profile_to_csv(&r.sse_profile, ProfileAxis::Toi),
                profile_to_csv(&r.ssp_profile, ProfileAxis::Toi),
            ]
        })
        .collect()
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("fingrav-net-{tag}-{}", std::process::id()))
}

/// Serial single-node reference: report, gathered stores, CSVs.
fn reference(
    campaign: &Campaign,
    dir: &std::path::Path,
) -> (CampaignReport, Vec<Vec<u8>>, Vec<String>) {
    let report = CampaignExecutor::serial()
        .execute_sharded(campaign, &factory(), dir)
        .unwrap()
        .into_report()
        .unwrap();
    let gathered = gather(&CheckpointDir::open(dir).unwrap(), campaign).unwrap();
    let stores = vec![
        gathered.run.to_bytes(),
        gathered.sse.to_bytes(),
        gathered.ssp.to_bytes(),
    ];
    let csvs = csvs_of(&report);
    (report, stores, csvs)
}

/// Asserts a served checkpoint directory + report match the reference
/// byte for byte.
fn assert_identical(
    campaign: &Campaign,
    dir: &std::path::Path,
    report: &CampaignReport,
    ref_report: &CampaignReport,
    ref_stores: &[Vec<u8>],
    ref_csvs: &[String],
    what: &str,
) {
    assert_eq!(report, ref_report, "{what}: reports drifted");
    assert_eq!(&csvs_of(report), ref_csvs, "{what}: CSV artefacts drifted");
    let gathered = gather(&CheckpointDir::open(dir).unwrap(), campaign).unwrap();
    for (store, reference) in [gathered.run, gathered.sse, gathered.ssp]
        .iter()
        .zip(ref_stores)
    {
        assert_eq!(
            &store.to_bytes(),
            reference,
            "{what}: gathered store drifted"
        );
    }
}

/// Fires the worker's local cancellation token when it starts its
/// `kill_at`-th entry (1-based), so the worker completes `kill_at - 1`
/// entries and dies mid-measurement of the next.
struct KillAtStart {
    cancel: CancellationToken,
    kill_at: usize,
    started: AtomicUsize,
}

impl KillAtStart {
    fn new(kill_at: usize) -> Self {
        KillAtStart {
            cancel: CancellationToken::new(),
            kill_at,
            started: AtomicUsize::new(0),
        }
    }
}

impl CampaignObserver for KillAtStart {
    fn entry_started(&self, _index: usize, _label: &str) {
        if self.started.fetch_add(1, Ordering::SeqCst) + 1 == self.kill_at {
            self.cancel.abort();
        }
    }
}

#[test]
fn kill_and_reconnect_at_every_entry_boundary() {
    let campaign = campaign_of(4);
    let root = temp_root("cuts");
    let (ref_report, ref_stores, ref_csvs) = reference(&campaign, &root.join("reference"));

    // kill_at = k: the first worker finishes k-1 entries, aborts inside
    // entry k, and a reconnecting worker re-measures it plus the rest —
    // covering the abort *inside* every entry as well as every boundary.
    for kill_at in 1..=campaign.len() {
        let dir = root.join(format!("kill-{kill_at}"));
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let outcome = std::thread::scope(|s| {
            s.spawn(|| {
                let killer = KillAtStart::new(kill_at);
                let stream = TcpStream::connect(addr).unwrap();
                let summary = work(
                    stream,
                    &campaign,
                    &factory(),
                    &killer,
                    &killer.cancel,
                    &WorkerOptions::default(),
                )
                .unwrap();
                assert_eq!(
                    summary.completed.len(),
                    kill_at - 1,
                    "worker must die inside entry {kill_at}"
                );
                // The replacement connects only after the first worker is
                // gone, like a restarted machine would.
                let stream = TcpStream::connect(addr).unwrap();
                let summary = work(
                    stream,
                    &campaign,
                    &factory(),
                    &NoopCampaignObserver,
                    &CancellationToken::new(),
                    &WorkerOptions::default(),
                )
                .unwrap();
                assert!(summary.campaign_complete);
            });
            coordinator.serve(
                &campaign,
                &dir,
                &NoopCampaignObserver,
                &CancellationToken::new(),
            )
        })
        .unwrap();
        let report = outcome.into_report().unwrap();
        assert_identical(
            &campaign,
            &dir,
            &report,
            &ref_report,
            &ref_stores,
            &ref_csvs,
            &format!("kill at entry {kill_at}"),
        );
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn abrupt_disconnects_and_corrupt_peers_replan() {
    let campaign = campaign_of(3);
    let root = temp_root("abrupt");
    let (ref_report, ref_stores, ref_csvs) = reference(&campaign, &root.join("reference"));
    let digest = fingrav::core::checkpoint::campaign_digest(&campaign);

    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let outcome = std::thread::scope(|s| {
        s.spawn(|| {
            // Peer 1: valid handshake, takes an assignment, then vanishes
            // without a single reply frame.
            let mut stream = TcpStream::connect(addr).unwrap();
            write_preamble(&mut stream).unwrap();
            Frame::Hello {
                digest,
                sequence: 0,
            }
            .write_to(&mut stream)
            .unwrap();
            read_preamble(&mut stream).unwrap();
            assert!(matches!(
                Frame::read_from(&mut stream).unwrap(),
                Frame::Welcome { .. }
            ));
            Frame::Request.write_to(&mut stream).unwrap();
            let assigned = match Frame::read_from(&mut stream).unwrap() {
                Frame::Assign { index } => index,
                other => panic!("expected an assignment, got {other:?}"),
            };
            drop(stream); // SIGKILL analogue: the entry must be re-planned.

            // Peer 2: takes an assignment and dies inside a Done frame —
            // a truncated artifact must never be trusted.
            let mut stream = TcpStream::connect(addr).unwrap();
            write_preamble(&mut stream).unwrap();
            Frame::Hello {
                digest,
                sequence: 0,
            }
            .write_to(&mut stream)
            .unwrap();
            read_preamble(&mut stream).unwrap();
            let _ = Frame::read_from(&mut stream).unwrap();
            Frame::Request.write_to(&mut stream).unwrap();
            let index = match Frame::read_from(&mut stream).unwrap() {
                Frame::Assign { index } => index,
                other => panic!("expected an assignment, got {other:?}"),
            };
            let mut done = Vec::new();
            Frame::Done {
                index,
                artifact: vec![0xAB; 1024],
            }
            .write_to(&mut done)
            .unwrap();
            stream.write_all(&done[..done.len() / 2]).unwrap();
            drop(stream);

            // Peer 3: delivers a *complete but corrupt* artifact; the
            // coordinator must reject it and re-plan, not persist it.
            let mut stream = TcpStream::connect(addr).unwrap();
            write_preamble(&mut stream).unwrap();
            Frame::Hello {
                digest,
                sequence: 0,
            }
            .write_to(&mut stream)
            .unwrap();
            read_preamble(&mut stream).unwrap();
            let _ = Frame::read_from(&mut stream).unwrap();
            Frame::Request.write_to(&mut stream).unwrap();
            let index = match Frame::read_from(&mut stream).unwrap() {
                Frame::Assign { index } => index,
                other => panic!("expected an assignment, got {other:?}"),
            };
            Frame::Done {
                index,
                artifact: vec![0xAB; 1024],
            }
            .write_to(&mut stream)
            .unwrap();
            // The coordinator drops the connection on the garbage.
            let mut rest = Vec::new();
            let _ = stream.read_to_end(&mut rest);
            drop(stream);
            let _ = assigned;

            // A healthy worker finishes everything the saboteurs dropped.
            let stream = TcpStream::connect(addr).unwrap();
            let summary = work(
                stream,
                &campaign,
                &factory(),
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions::default(),
            )
            .unwrap();
            assert!(summary.campaign_complete);
            assert_eq!(summary.completed.len(), campaign.len());
        });
        coordinator.serve(
            &campaign,
            &dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    })
    .unwrap();
    let report = outcome.into_report().unwrap();
    assert_identical(
        &campaign,
        &dir,
        &report,
        &ref_report,
        &ref_stores,
        &ref_csvs,
        "abrupt disconnects",
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn handshake_rejects_foreign_versioned_and_mismatched_peers() {
    let campaign = campaign_of(2);
    let root = temp_root("handshake");
    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();

    let outcome = std::thread::scope(|s| {
        s.spawn(|| {
            // Foreign magic: the coordinator hangs up without a reply.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"HTTP/1.1 GET /\r\n").unwrap();
            let mut buf = Vec::new();
            let n = stream.read_to_end(&mut buf).unwrap();
            assert_eq!(n, 0, "a foreign peer gets no bytes back");

            // Future wire version: same treatment.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&WIRE_MAGIC).unwrap();
            stream.write_all(&99u32.to_le_bytes()).unwrap();
            stream.write_all(&0u32.to_le_bytes()).unwrap();
            let mut buf = Vec::new();
            let n = stream.read_to_end(&mut buf).unwrap();
            assert_eq!(n, 0, "a future-versioned peer gets no bytes back");

            // A worker with a *different campaign* is denied with the
            // digest mismatch spelled out.
            let other = campaign_of(3);
            let stream = TcpStream::connect(addr).unwrap();
            let err = work(
                stream,
                &other,
                &factory(),
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions::default(),
            )
            .unwrap_err();
            match err {
                TransportError::Denied { code, detail } => {
                    assert_eq!(code, DENY_DIGEST_MISMATCH);
                    assert!(detail.contains("digest"), "detail: {detail}");
                }
                other => panic!("expected Denied, got {other}"),
            }

            // The right campaign still completes afterwards.
            let stream = TcpStream::connect(addr).unwrap();
            work(
                stream,
                &campaign,
                &factory(),
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions::default(),
            )
            .unwrap();
        });
        coordinator.serve(
            &campaign,
            &dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    })
    .unwrap();
    assert!(outcome.is_complete());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn served_checkpoint_resumes_locally_and_vice_versa() {
    let campaign = campaign_of(4);
    let root = temp_root("interop");
    let (ref_report, ref_stores, ref_csvs) = reference(&campaign, &root.join("reference"));

    // Serve → cancel the coordinator after two entries → finish the same
    // directory with a plain local resume.
    let dir = root.join("serve-then-resume");
    {
        struct CancelAfter {
            cancel: CancellationToken,
            limit: usize,
            finished: AtomicUsize,
        }
        impl CampaignObserver for CancelAfter {
            fn entry_finished(&self, _index: usize, _report: &KernelPowerReport) {
                if self.finished.fetch_add(1, Ordering::SeqCst) + 1 == self.limit {
                    self.cancel.abort();
                }
            }
        }
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let observer = CancelAfter {
            cancel: CancellationToken::new(),
            limit: 2,
            finished: AtomicUsize::new(0),
        };
        let outcome = std::thread::scope(|s| {
            s.spawn(|| {
                let stream = TcpStream::connect(addr).unwrap();
                let summary = work(
                    stream,
                    &campaign,
                    &factory(),
                    &NoopCampaignObserver,
                    &CancellationToken::new(),
                    &WorkerOptions::default(),
                )
                .unwrap();
                assert!(summary.aborted, "the worker must be told to stop");
            });
            coordinator.serve(&campaign, &dir, &observer, &observer.cancel)
        })
        .unwrap();
        assert!(!outcome.is_complete(), "cancellation left work undone");

        let report = CampaignExecutor::new(2)
            .resume(&campaign, &factory(), &dir)
            .unwrap()
            .into_report()
            .unwrap();
        assert_identical(
            &campaign,
            &dir,
            &report,
            &ref_report,
            &ref_stores,
            &ref_csvs,
            "serve then local resume",
        );
    }

    // Local sharded run cancelled after two entries → finish the same
    // directory over the wire.
    let dir = root.join("local-then-serve");
    {
        struct CancelAfter {
            cancel: CancellationToken,
            limit: usize,
            finished: AtomicUsize,
        }
        impl CampaignObserver for CancelAfter {
            fn entry_finished(&self, _index: usize, _report: &KernelPowerReport) {
                if self.finished.fetch_add(1, Ordering::SeqCst) + 1 == self.limit {
                    self.cancel.abort();
                }
            }
        }
        let observer = CancelAfter {
            cancel: CancellationToken::new(),
            limit: 2,
            finished: AtomicUsize::new(0),
        };
        let partial = CampaignExecutor::serial()
            .execute_sharded_observed(&campaign, &factory(), &dir, &observer, &observer.cancel)
            .unwrap();
        assert!(!partial.is_complete(), "cancellation left work undone");

        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.local_addr().unwrap();
        let outcome = std::thread::scope(|s| {
            s.spawn(|| {
                let stream = TcpStream::connect(addr).unwrap();
                work(
                    stream,
                    &campaign,
                    &factory(),
                    &NoopCampaignObserver,
                    &CancellationToken::new(),
                    &WorkerOptions::default(),
                )
                .unwrap();
            });
            coordinator.serve(
                &campaign,
                &dir,
                &NoopCampaignObserver,
                &CancellationToken::new(),
            )
        })
        .unwrap();
        let report = outcome.into_report().unwrap();
        assert_identical(
            &campaign,
            &dir,
            &report,
            &ref_report,
            &ref_stores,
            &ref_csvs,
            "local run then serve",
        );
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn measurement_failures_follow_the_error_policy() {
    let campaign = campaign_of(3);
    let root = temp_root("policy");
    let broken = FnBackendFactory(move |i: usize| {
        if i == 1 {
            Err(MethodologyError::Backend(format!("slot {i} is broken")))
        } else {
            Simulation::new(SimConfig::default(), 0x7EA7 ^ i as u64)
                .map_err(|e| MethodologyError::Backend(e.to_string()))
        }
    });
    let broken = &broken;
    let campaign = &campaign;

    for policy in [ErrorPolicy::FailFast, ErrorPolicy::CollectAll] {
        let dir = root.join(format!("{policy:?}"));
        let coordinator = Coordinator::bind("127.0.0.1:0")
            .unwrap()
            .error_policy(policy);
        let addr = coordinator.local_addr().unwrap();
        let outcome = std::thread::scope(|s| {
            s.spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let summary = work(
                    stream,
                    campaign,
                    broken,
                    &NoopCampaignObserver,
                    &CancellationToken::new(),
                    &WorkerOptions::default(),
                )
                .unwrap();
                assert!(!summary.campaign_complete);
            });
            coordinator.serve(
                campaign,
                &dir,
                &NoopCampaignObserver,
                &CancellationToken::new(),
            )
        })
        .unwrap();
        assert_eq!(outcome.errors.len(), 1, "{policy:?}");
        assert_eq!(outcome.errors[0].0, 1);
        assert!(
            matches!(outcome.errors[0].1, MethodologyError::Backend(ref m) if m.contains("slot 1"))
        );
        let measured = outcome.reports.iter().filter(|r| r.is_some()).count();
        match policy {
            // A single serial worker claims in plan order, so entry 0
            // completes before the failure halts assignment.
            ErrorPolicy::FailFast => {
                assert_eq!(measured, 1, "fail-fast stops after the failure");
                assert_eq!(outcome.skipped, vec![2]);
            }
            ErrorPolicy::CollectAll => {
                assert_eq!(measured, 2, "collect-all measures every healthy slot");
                assert!(outcome.skipped.is_empty());
            }
        }
        assert!(outcome.into_report().is_err());
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Multi-campaign sequence negotiation: a worker asking for an earlier
/// or later campaign position than the coordinator is serving gets the
/// matching typed denial instead of a misleading digest mismatch.
#[test]
fn sequence_mismatches_get_typed_denials() {
    let campaign = campaign_of(2);
    let root = temp_root("sequence");
    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap().sequence(5);
    let addr = coordinator.local_addr().unwrap();

    let outcome = std::thread::scope(|s| {
        s.spawn(|| {
            let ask = |sequence: u64| {
                let stream = TcpStream::connect(addr).unwrap();
                work(
                    stream,
                    &campaign,
                    &factory(),
                    &NoopCampaignObserver,
                    &CancellationToken::new(),
                    &WorkerOptions {
                        sequence,
                        ..WorkerOptions::default()
                    },
                )
            };
            // Behind the coordinator: that campaign is already gone.
            match ask(4).unwrap_err() {
                TransportError::Denied { code, .. } => assert_eq!(code, DENY_SEQUENCE_PASSED),
                other => panic!("expected a typed denial, got {other}"),
            }
            // Ahead of the coordinator: told to come back.
            match ask(6).unwrap_err() {
                TransportError::Denied { code, .. } => assert_eq!(code, DENY_SEQUENCE_EARLY),
                other => panic!("expected a typed denial, got {other}"),
            }
            // The matching sequence works the campaign to completion.
            let summary = ask(5).unwrap();
            assert!(summary.campaign_complete);
        });
        coordinator.serve(
            &campaign,
            &dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    })
    .unwrap();
    assert!(outcome.is_complete());
    std::fs::remove_dir_all(&root).unwrap();
}

/// A cancelled serve must return even when no worker ever connected —
/// the cancellation token is observed by the accept loop itself, not
/// only by worker-driven assignment.
#[test]
fn cancelling_a_workerless_serve_returns() {
    let campaign = campaign_of(2);
    let root = temp_root("workerless");
    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let cancel = CancellationToken::new();

    let outcome = std::thread::scope(|s| {
        let canceller = {
            let cancel = cancel.clone();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(100));
                cancel.abort();
            })
        };
        let outcome = coordinator
            .serve(&campaign, &dir, &NoopCampaignObserver, &cancel)
            .unwrap();
        canceller.join().unwrap();
        outcome
    });
    assert!(!outcome.is_complete());
    assert_eq!(outcome.skipped, vec![0, 1], "every entry is skipped");
    // The checkpoint is a normal pending manifest; a local run completes it.
    let report = CampaignExecutor::serial()
        .resume(&campaign, &factory(), &dir)
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(report.reports.len(), campaign.len());
    std::fs::remove_dir_all(&root).unwrap();
}

/// The worker-side summary bookkeeping: max_entries leaves cleanly and
/// fetch_reports downloads the campaign-ordered report set.
#[test]
fn fetch_reports_downloads_the_full_campaign() {
    let campaign = campaign_of(3);
    let root = temp_root("fetch");
    let (ref_report, _, _) = reference(&campaign, &root.join("reference"));

    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let (outcome, fetched) = std::thread::scope(|s| {
        let fetcher = s.spawn(|| {
            let stream = TcpStream::connect(addr).unwrap();
            let summary = work(
                stream,
                &campaign,
                &factory(),
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions {
                    max_entries: None,
                    fetch_reports: true,
                    ..WorkerOptions::default()
                },
            )
            .unwrap();
            assert!(summary.campaign_complete);
            summary.reports.expect("complete campaigns are fetchable")
        });
        let outcome = coordinator
            .serve(
                &campaign,
                &dir,
                &NoopCampaignObserver,
                &CancellationToken::new(),
            )
            .unwrap();
        (outcome, fetcher.join().unwrap())
    });
    let report = outcome.into_report().unwrap();
    assert_eq!(report, ref_report);
    assert_eq!(
        CampaignReport { reports: fetched },
        ref_report,
        "the worker's downloaded reports must match the coordinator's"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// The deadline-hardening tentpole: a worker that takes an assignment
/// and then goes byte-silent *without closing its socket* (a wedged
/// process, a dead NIC, a half-open connection) must not wedge the
/// campaign. The coordinator's idle deadline evicts the lapsed
/// assignment, re-queues the entry at the front of the plan, and a live
/// worker finishes the campaign with byte-identical artifacts.
#[test]
fn silent_unclosed_worker_is_evicted_and_replanned() {
    let campaign = campaign_of(3);
    let root = temp_root("silent");
    let (ref_report, ref_stores, ref_csvs) = reference(&campaign, &root.join("reference"));
    let digest = fingrav::core::checkpoint::campaign_digest(&campaign);

    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0")
        .unwrap()
        .idle_timeout(Duration::from_millis(400));
    let addr = coordinator.local_addr().unwrap();

    let assigned = AtomicUsize::new(usize::MAX);
    let served = AtomicBool::new(false);
    let outcome = std::thread::scope(|s| {
        // The silent peer: a complete handshake, one assignment, one
        // Started frame — then nothing, with the socket deliberately
        // held open (no FIN) until the campaign is over.
        s.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            write_preamble(&mut stream).unwrap();
            Frame::Hello {
                digest,
                sequence: 0,
            }
            .write_to(&mut stream)
            .unwrap();
            read_preamble(&mut stream).unwrap();
            assert!(matches!(
                Frame::read_from(&mut stream).unwrap(),
                Frame::Welcome { .. }
            ));
            Frame::Request.write_to(&mut stream).unwrap();
            let index = match Frame::read_from(&mut stream).unwrap() {
                Frame::Assign { index } => index,
                other => panic!("expected an assignment, got {other:?}"),
            };
            Frame::Started {
                index,
                label: format!("k{index}"),
            }
            .write_to(&mut stream)
            .unwrap();
            assigned.store(index as usize, Ordering::SeqCst);
            while !served.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(20));
            }
            drop(stream);
        });
        // The live worker starts only once the silent peer holds its
        // assignment, so the eviction path is guaranteed to run.
        s.spawn(|| {
            while assigned.load(Ordering::SeqCst) == usize::MAX {
                std::thread::sleep(Duration::from_millis(5));
            }
            let stream = TcpStream::connect(addr).unwrap();
            let summary = work(
                stream,
                &campaign,
                &factory(),
                &NoopCampaignObserver,
                &CancellationToken::new(),
                &WorkerOptions {
                    heartbeat: Duration::from_millis(50),
                    ..WorkerOptions::default()
                },
            )
            .unwrap();
            assert!(summary.campaign_complete);
        });
        let outcome = coordinator
            .serve(
                &campaign,
                &dir,
                &NoopCampaignObserver,
                &CancellationToken::new(),
            )
            .unwrap();
        served.store(true, Ordering::SeqCst);
        outcome
    });
    assert_eq!(
        outcome.evictions,
        vec![assigned.load(Ordering::SeqCst)],
        "exactly the silent peer's assignment is evicted"
    );
    assert!(outcome.is_complete());
    let report = outcome.into_report().unwrap();
    assert_identical(
        &campaign,
        &dir,
        &report,
        &ref_report,
        &ref_stores,
        &ref_csvs,
        "silent-worker eviction",
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// The liveness half of the deadline contract: a worker whose entry
/// measurement makes no wire progress for longer than the coordinator's
/// idle budget must NOT be evicted — the background heartbeat pump
/// proves the connection is alive while the measurement runs.
struct SlowFirstEntry {
    started: AtomicUsize,
}

impl CampaignObserver for SlowFirstEntry {
    fn entry_started(&self, _index: usize, _label: &str) {
        if self.started.fetch_add(1, Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1200));
        }
    }
}

#[test]
fn heartbeats_keep_slow_entries_alive() {
    let campaign = campaign_of(2);
    let root = temp_root("slow");
    let (ref_report, ref_stores, ref_csvs) = reference(&campaign, &root.join("reference"));

    let dir = root.join("served");
    let coordinator = Coordinator::bind("127.0.0.1:0")
        .unwrap()
        .idle_timeout(Duration::from_millis(400));
    let addr = coordinator.local_addr().unwrap();
    let outcome = std::thread::scope(|s| {
        s.spawn(|| {
            let observer = SlowFirstEntry {
                started: AtomicUsize::new(0),
            };
            let stream = TcpStream::connect(addr).unwrap();
            let summary = work(
                stream,
                &campaign,
                &factory(),
                &observer,
                &CancellationToken::new(),
                &WorkerOptions {
                    heartbeat: Duration::from_millis(40),
                    ..WorkerOptions::default()
                },
            )
            .unwrap();
            assert!(summary.campaign_complete);
        });
        coordinator.serve(
            &campaign,
            &dir,
            &NoopCampaignObserver,
            &CancellationToken::new(),
        )
    })
    .unwrap();
    assert!(
        outcome.evictions.is_empty(),
        "heartbeats must prove liveness through a slow entry: {:?}",
        outcome.evictions
    );
    let report = outcome.into_report().unwrap();
    assert_identical(
        &campaign,
        &dir,
        &report,
        &ref_report,
        &ref_stores,
        &ref_csvs,
        "slow entry under heartbeats",
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// The persistence half of the tentpole: one `CampaignService` listener
/// serves two campaigns back-to-back with no rebind, routing workers by
/// wire sequence number, and both artifact trees stay byte-identical to
/// their serial references.
#[test]
fn persistent_service_serves_campaigns_back_to_back() {
    let first = campaign_of(3);
    let second = campaign_of(2);
    let root = temp_root("service");
    let (ref_a, stores_a, csvs_a) = reference(&first, &root.join("ref-a"));
    let (ref_b, stores_b, csvs_b) = reference(&second, &root.join("ref-b"));

    let service = CampaignService::bind("127.0.0.1:0", ServiceConfig::default()).unwrap();
    let addr = service.local_addr().unwrap();
    let dir_a = root.join("served-a");
    let dir_b = root.join("served-b");
    let ticket_a = service.submit(first.clone(), dir_a.clone());
    let ticket_b = service.submit(second.clone(), dir_b.clone());
    assert_eq!(ticket_a.sequence(), 0, "tickets are numbered in order");
    assert_eq!(ticket_b.sequence(), 1, "tickets are numbered in order");

    let (outcome_a, outcome_b) = std::thread::scope(|s| {
        // One worker serves both campaigns through the same address; a
        // connection that lands while the service is still on an
        // earlier campaign gets the typed early denial and retries.
        s.spawn(|| {
            for (sequence, campaign) in [(0u64, &first), (1u64, &second)] {
                loop {
                    let stream = connect_with_retry(addr, Duration::from_secs(10)).unwrap();
                    match work(
                        stream,
                        campaign,
                        &factory(),
                        &NoopCampaignObserver,
                        &CancellationToken::new(),
                        &WorkerOptions {
                            sequence,
                            ..WorkerOptions::default()
                        },
                    ) {
                        Ok(summary) => {
                            assert!(summary.campaign_complete);
                            break;
                        }
                        Err(TransportError::Denied { code, .. }) if code == DENY_SEQUENCE_EARLY => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(other) => panic!("worker failed on sequence {sequence}: {other}"),
                    }
                }
            }
        });
        let outcome_a = ticket_a.wait().unwrap();
        let outcome_b = ticket_b.wait().unwrap();
        (outcome_a, outcome_b)
    });
    assert_eq!(ticket_a.phase(), CampaignPhase::Done);
    assert_eq!(ticket_b.phase(), CampaignPhase::Done);
    service.shutdown();

    assert!(outcome_a.is_complete() && outcome_b.is_complete());
    let report_a = outcome_a.into_report().unwrap();
    let report_b = outcome_b.into_report().unwrap();
    assert_identical(
        &first,
        &dir_a,
        &report_a,
        &ref_a,
        &stores_a,
        &csvs_a,
        "first campaign through the service",
    );
    assert_identical(
        &second,
        &dir_b,
        &report_b,
        &ref_b,
        &stores_b,
        &csvs_b,
        "second campaign through the service",
    );
    std::fs::remove_dir_all(&root).unwrap();
}
