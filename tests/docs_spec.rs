//! Keeps the prose documentation honest: `docs/*.md` file references
//! must resolve, and the normative claims in `docs/FORMATS.md` (magics,
//! versions, header layouts, frame grammar) must match the shipped
//! codecs and the committed golden fixtures byte for byte.

use std::path::Path;

use fingrav::core::checkpoint::{CKPT_MAGIC, CKPT_VERSION};
use fingrav::core::profile::ProfilePoint;
use fingrav::core::store::{
    ColumnLayout, ProfileStore, ProfileStoreView, STORE_MAGIC, STORE_VERSION,
};
use fingrav::core::transport::{Frame, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION};
use fingrav::sim::ComponentPower;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read_doc(name: &str) -> String {
    let path = repo_root().join("docs").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist and be readable: {e}", path.display()))
}

/// Every relative markdown link in `docs/*.md` (and the README) must
/// point at a file or directory that exists.
#[test]
fn doc_links_resolve() {
    let mut checked = 0usize;
    let mut docs: Vec<(String, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(repo_root().join("docs")).expect("docs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push((std::fs::read_to_string(&path).unwrap(), path));
        }
    }
    docs.push((
        std::fs::read_to_string(repo_root().join("README.md")).unwrap(),
        repo_root().join("README.md"),
    ));
    for (text, doc_path) in &docs {
        let base = doc_path.parent().unwrap();
        // Markdown links: `](target)`. External URLs and intra-page
        // anchors are skipped; `#section` suffixes are stripped.
        for (pos, _) in text.match_indices("](") {
            let rest = &text[pos + 2..];
            let Some(end) = rest.find(')') else { continue };
            let target = &rest[..end];
            if target.starts_with("http") || target.starts_with('#') || target.is_empty() {
                continue;
            }
            let target = target.split('#').next().unwrap();
            let resolved = base.join(target);
            assert!(
                resolved.exists(),
                "{} links to `{target}`, which does not resolve ({})",
                doc_path.display(),
                resolved.display()
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "expected to check many links, found {checked}"
    );
}

/// The version constants and magics cited by FORMATS.md are the shipped
/// ones — the spec cannot silently drift from the code.
#[test]
fn formats_spec_cites_the_shipped_constants() {
    let spec = read_doc("FORMATS.md");

    for (magic, version, expected) in [
        (STORE_MAGIC, STORE_VERSION, 1),
        (CKPT_MAGIC, CKPT_VERSION, 1),
        // The wire moved to v2 when the Heartbeat frame landed; the
        // store and checkpoint encodings are unchanged.
        (WIRE_MAGIC, WIRE_VERSION, 2),
    ] {
        let name = std::str::from_utf8(&magic).unwrap();
        assert!(spec.contains(name), "spec must name the `{name}` magic");
        // The hex spelling of the magic (e.g. "46 47 52 56 50 52 4F 46").
        let hex: Vec<String> = magic.iter().map(|b| format!("{b:02X}")).collect();
        assert!(
            spec.contains(&hex.join(" ")),
            "spec must spell out the `{name}` magic bytes"
        );
        assert_eq!(
            version, expected,
            "this spec revision documents `{name}` version {expected}"
        );
    }

    // The transport protocol version is recorded in exactly one code
    // location; the spec cites it by name and value.
    assert!(
        spec.contains(&format!("WIRE_VERSION = {WIRE_VERSION}")),
        "spec must cite WIRE_VERSION and its value"
    );
    assert!(
        spec.contains("MAX_FRAME_LEN"),
        "spec must name the frame length ceiling"
    );
    let pow = MAX_FRAME_LEN.trailing_zeros();
    assert_eq!(
        1u64 << pow,
        MAX_FRAME_LEN,
        "frame ceiling is a power of two"
    );
    assert!(
        spec.contains(&format!("2^{pow}")),
        "spec must state the frame length ceiling 2^{pow}"
    );
}

/// The committed golden fixtures open with exactly the header this spec
/// describes: magic, version 1, and the documented section tags.
#[test]
fn golden_fixture_headers_match_the_spec() {
    for (file, section) in [
        ("golden_manifest.fgrvckpt", 1u32),
        ("golden_entry.fgrvckpt", 2u32),
        ("golden_stage.fgrvckpt", 3u32),
    ] {
        let path = repo_root().join("tests/data").join(file);
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("golden fixture {file} must exist: {e}"));
        assert_eq!(&bytes[0..8], &CKPT_MAGIC, "{file}: magic");
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            CKPT_VERSION,
            "{file}: version"
        );
        assert_eq!(
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            section,
            "{file}: section tag"
        );
    }
}

/// A freshly encoded store lays out exactly as §2 documents: header
/// offsets, column order, and total size.
#[test]
fn fgrvprof_layout_matches_the_spec() {
    let mut store = ProfileStore::new();
    for i in 0..3u32 {
        store.push(ProfilePoint {
            run: i,
            exec_pos: Some(i * 2),
            toi_ns: Some(100.0 + f64::from(i)),
            run_time_ns: 10.0 * f64::from(i),
            power: ComponentPower::new(1.0, 2.0, 3.0, 4.0),
        });
    }
    let bytes = store.to_bytes();
    let n = 3usize;
    assert_eq!(&bytes[0..8], &STORE_MAGIC);
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        STORE_VERSION
    );
    assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 0);
    assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 3);
    // 24-byte header, two u32 columns, six f64 columns, one bitmap word.
    assert_eq!(bytes.len(), 24 + n * (4 + 4 + 8 * 6) + 8);
    // First run value sits right after the header; first exec_pos right
    // after the run column; the bitmap word is last with 3 bits set.
    assert_eq!(u32::from_le_bytes(bytes[24..28].try_into().unwrap()), 0);
    assert_eq!(
        u32::from_le_bytes(bytes[24 + 4 * n..28 + 4 * n].try_into().unwrap()),
        0
    );
    let bitmap = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    assert_eq!(bitmap, 0b111);
}

/// §2.1's in-place-read rules hold as documented: `ColumnLayout` matches
/// the §2 offset table, the documented total-size formula is exact, the
/// spec states the unaligned-read rule by name, and a store embedded at
/// an *odd* byte offset (so every f64 block is misaligned) still decodes
/// in place to exactly the owned values.
#[test]
fn fgrvprof_inplace_read_rules_match_the_spec() {
    let spec = read_doc("FORMATS.md");
    for phrase in [
        "Alignment and in-place reads",
        "No alignment is guaranteed",
        "from_le_bytes",
        "f64::from_bits",
        "ColumnLayout",
    ] {
        assert!(
            spec.contains(phrase),
            "FORMATS.md §2.1 must state `{phrase}`"
        );
    }
    // The architecture doc carries the matching data-flow section.
    let arch = read_doc("ARCHITECTURE.md");
    for phrase in [
        "Zero-copy data flow",
        "ProfileStoreView",
        "extend_from_view",
    ] {
        assert!(
            arch.contains(phrase),
            "ARCHITECTURE.md must describe `{phrase}`"
        );
    }

    // ColumnLayout is the offset table of §2 in executable form.
    for n in [0usize, 1, 3, 64, 65, 1000] {
        let l = ColumnLayout::for_len(n).expect("layout fits");
        assert_eq!(l.run, 24);
        assert_eq!(l.exec_pos, 24 + 4 * n);
        assert_eq!(l.toi_ns, 24 + 8 * n);
        assert_eq!(l.run_time_ns, l.toi_ns + 8 * n);
        assert_eq!(l.xcd, l.run_time_ns + 8 * n);
        assert_eq!(l.iod, l.xcd + 8 * n);
        assert_eq!(l.hbm, l.iod + 8 * n);
        assert_eq!(l.rest, l.hbm + 8 * n);
        assert_eq!(l.bitmap, l.rest + 8 * n);
        // The documented closed form for the total size.
        assert_eq!(l.total, 24 + 2 * 4 * n + 6 * 8 * n + 8 * n.div_ceil(64));
    }

    // In-place decode at an odd offset: shift the encoding by one byte so
    // no f64 block is 8-aligned, and the view must still serve exact
    // values (the unaligned-read rule in action).
    let mut store = ProfileStore::new();
    for i in 0..5u32 {
        store.push(ProfilePoint {
            run: i,
            exec_pos: Some(i),
            toi_ns: Some(0.1 + f64::from(i)),
            run_time_ns: -3.5 * f64::from(i),
            power: ComponentPower::new(1.25, 2.5, 3.75, 5.0),
        });
    }
    let mut shifted = vec![0xAAu8];
    shifted.extend_from_slice(&store.to_bytes());
    let view = ProfileStoreView::new(&shifted[1..]).expect("misaligned buffer decodes");
    assert_eq!(view.to_store(), store);
    assert_eq!(view.mean_power(), store.mean_power());
}

/// A wire frame lays out exactly as §4.2 documents: u32 tag, u64 payload
/// length, payload.
#[test]
fn fgrvwire_frame_layout_matches_the_spec() {
    let mut bytes = Vec::new();
    Frame::Assign { index: 7 }.write_to(&mut bytes).unwrap();
    assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), 5);
    assert_eq!(u64::from_le_bytes(bytes[4..12].try_into().unwrap()), 8);
    assert_eq!(u64::from_le_bytes(bytes[12..20].try_into().unwrap()), 7);
    assert_eq!(bytes.len(), 20);

    let mut empty = Vec::new();
    Frame::Request.write_to(&mut empty).unwrap();
    assert_eq!(u32::from_le_bytes(empty[0..4].try_into().unwrap()), 4);
    assert_eq!(u64::from_le_bytes(empty[4..12].try_into().unwrap()), 0);
    assert_eq!(empty.len(), 12);
}

/// The transport-hardening claims stay in the docs: FORMATS.md must
/// carry the v2 heartbeat frame row and the deadline fault rules, and
/// ARCHITECTURE.md must describe the campaign service the daemon mode
/// is built on.
#[test]
fn transport_hardening_sections_match_the_code() {
    let spec = read_doc("FORMATS.md");
    for phrase in [
        "`Heartbeat`",
        "Deadline rule (v2)",
        "byte-silence",
        "idle_timeout",
        "io_timeout",
        "evicted",
    ] {
        assert!(
            spec.contains(phrase),
            "FORMATS.md §4 must state `{phrase}` (heartbeat/deadline rules)"
        );
    }
    let arch = read_doc("ARCHITECTURE.md");
    for phrase in [
        "Campaign service",
        "CampaignService",
        "CampaignTicket",
        "AssignmentLease",
        "Deadline discipline",
        "exponential backoff",
        "DENY_SEQUENCE_EARLY",
    ] {
        assert!(
            arch.contains(phrase),
            "ARCHITECTURE.md must describe `{phrase}` (campaign service section)"
        );
    }
}

/// The architecture doc's engine hot-loop section names the actual
/// scheduling and dispatch machinery the engine is built on, so the doc
/// cannot silently rot away from the code.
#[test]
fn engine_hot_loop_section_matches_the_engine() {
    let arch = read_doc("ARCHITECTURE.md");
    for phrase in [
        "Engine hot loop",
        "HybridQueue",
        "sequence counter",
        "monomorphizes",
        "TelemetrySink",
        "run_script_with",
        "EngineStats",
    ] {
        assert!(
            arch.contains(phrase),
            "ARCHITECTURE.md engine hot-loop section must describe `{phrase}`"
        );
    }
}

/// The fuzzing doc's target table mirrors the shipped target list
/// (`fgrv_fuzz::targets::TARGETS`) row for row, in order: same count,
/// same CLI names, same descriptions. Adding, removing, renaming, or
/// re-describing a fuzz target without updating `docs/FUZZING.md`
/// fails here.
#[test]
fn fuzzing_doc_matches_the_shipped_targets() {
    let doc = read_doc("FUZZING.md");
    let rows: Vec<&str> = doc
        .lines()
        .filter(|l| l.starts_with("| `") && l.ends_with('|'))
        .collect();
    assert_eq!(
        rows.len(),
        fgrv_fuzz::targets::TARGETS.len(),
        "FUZZING.md target table must have one row per shipped target"
    );
    for (row, info) in rows.iter().zip(fgrv_fuzz::targets::TARGETS) {
        assert!(
            row.starts_with(&format!("| `{}` |", info.name)),
            "FUZZING.md table row order/name drifted: expected `{}`, row is {row:?}",
            info.name
        );
        assert!(
            row.contains(info.description),
            "FUZZING.md row for `{}` must carry its shipped description {:?}",
            info.name,
            info.description
        );
    }

    // The oracle contract stays documented by name.
    for phrase in [
        "No panics",
        "Bounded allocation",
        "Owned ≡ view",
        "Round trips",
        "NaN-safe",
        "tests/data/fuzz/",
        "--features cover",
    ] {
        assert!(
            doc.contains(phrase),
            "FUZZING.md must state `{phrase}` (oracle/corpus contract)"
        );
    }

    // The committed corpus the doc describes exists for every target.
    for info in fgrv_fuzz::targets::TARGETS {
        let dir = repo_root().join("tests/data/fuzz").join(info.name);
        assert!(
            dir.is_dir() && std::fs::read_dir(&dir).unwrap().next().is_some(),
            "committed corpus for `{}` missing or empty at {}",
            info.name,
            dir.display()
        );
    }
}

/// The analysis doc's rule catalogue is cross-checked against the
/// linter's registered rule table: every rule appears as a table row,
/// the row count matches (no phantom documented rules), and the doc
/// names exactly the suppressible rules in its allowlist section.
#[test]
fn analysis_doc_matches_the_registered_lint_rules() {
    let doc = read_doc("ANALYSIS.md");
    let table_rows: Vec<&str> = doc
        .lines()
        .filter(|l| l.starts_with("| `") && l.ends_with("|"))
        .collect();
    assert_eq!(
        table_rows.len(),
        fgrv_lint::RULES.len(),
        "ANALYSIS.md rule table must have one row per registered rule"
    );
    for rule in fgrv_lint::RULES {
        let cell = format!("| `{}` |", rule.name);
        assert!(
            table_rows.iter().any(|row| row.starts_with(&cell)),
            "ANALYSIS.md rule table is missing a row for `{}`",
            rule.name
        );
        if rule.suppressible {
            assert!(
                doc.contains(&format!("`{}`, ", rule.name))
                    || doc.contains(&format!(", `{}`", rule.name)),
                "ANALYSIS.md must list `{}` among the suppressible rules",
                rule.name
            );
        }
    }
    let suppressible = fgrv_lint::RULES.iter().filter(|r| r.suppressible).count();
    assert_eq!(
        suppressible, 2,
        "the doc describes exactly two suppressible rules"
    );
}
