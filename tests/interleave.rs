//! Interleaved-execution contamination (paper Section V-C3, takeaway #5):
//! kernels shorter than the averaging window inherit their predecessors'
//! power; kernels longer than it do not (much).

use fingrav::core::backend::PowerBackend;
use fingrav::core::profile::place_logs;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::core::stats;
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::{KernelDesc, KernelHandle, Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

/// Measures the mean LOI power of a single target execution launched right
/// after `pre_count` executions of `pre`.
fn interleaved_power(
    seed: u64,
    pre: &KernelDesc,
    pre_count: u32,
    target: &KernelDesc,
    runs: u32,
) -> (Option<f64>, usize) {
    let mut gpu = Simulation::new(SimConfig::default(), seed).expect("valid");
    let pre_h = PowerBackend::register_kernel(&mut gpu, pre).expect("register pre");
    let tgt_h: KernelHandle =
        PowerBackend::register_kernel(&mut gpu, target).expect("register target");
    let mut lois = Vec::new();
    for _ in 0..runs {
        let script = Script::builder()
            .begin_run()
            .start_power_logger()
            .read_gpu_timestamp()
            .sleep_uniform(SimDuration::ZERO, SimDuration::from_millis(1))
            .launch_timed(pre_h, pre_count)
            .launch_timed(tgt_h, 1)
            .sleep(SimDuration::from_millis(1))
            .read_gpu_timestamp()
            .stop_power_logger()
            .sleep(SimDuration::from_millis(8))
            .build();
        let trace = gpu.run_script(&script).expect("script");
        let read = trace.timestamp_reads[0];
        let calib = ReadDelayCalibration {
            median_rtt_ns: read.rtt_ns(),
            assumed_sample_frac: 0.5,
        };
        let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&gpu));
        for log in place_logs(&trace, &sync) {
            if let Some((pos, _)) = log.containing_exec {
                if trace.executions[pos].kernel == tgt_h {
                    lois.push(log.power.total());
                }
            }
        }
    }
    let n = lois.len();
    (stats::mean(&lois), n)
}

fn isolated_ssp(seed: u64, desc: &KernelDesc, runs: u32) -> f64 {
    let mut gpu = Simulation::new(SimConfig::default(), seed).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(runs));
    runner
        .profile(desc)
        .expect("profiles")
        .ssp_mean_total_w
        .expect("SSP LOIs")
}

#[test]
fn light_predecessors_deflate_a_short_kernel() {
    let machine = SimConfig::default().machine.clone();
    let target = suite::cb_gemm(&machine, 2048);
    let gemv = suite::mb_gemv(&machine, 4096);
    let iso = isolated_ssp(71, &target, 60);
    let (mean, lois) = interleaved_power(72, &gemv, 40, &target, 250);
    let mean = mean.expect("LOIs landed in the target");
    assert!(lois >= 3, "need a few LOIs, got {lois}");
    assert!(
        mean < 0.7 * iso,
        "GEMV-preceded CB-2K ({mean:.0} W) must read far below isolated SSP ({iso:.0} W)"
    );
}

#[test]
fn heavy_predecessors_inflate_a_short_memory_kernel() {
    let machine = SimConfig::default().machine.clone();
    // The 8K GEMV (~20 us) gives a workable LOI hit rate per run.
    let target = suite::mb_gemv(&machine, 8192);
    let heavy = suite::cb_gemm(&machine, 8192);
    let iso = isolated_ssp(73, &target, 60);
    let (mean, lois) = interleaved_power(74, &heavy, 3, &target, 400);
    let mean = mean.expect("LOIs landed in the target");
    assert!(lois >= 2, "need a couple of LOIs, got {lois}");
    assert!(
        mean > 1.5 * iso,
        "GEMM-preceded MB-4K-GEMV ({mean:.0} W) must read far above isolated SSP ({iso:.0} W)"
    );
}

#[test]
fn above_window_kernel_is_barely_affected() {
    let machine = SimConfig::default().machine.clone();
    let target = suite::cb_gemm(&machine, 8192); // 1.7 ms >> 1 ms window
    let light = suite::cb_gemm(&machine, 2048);
    let iso = isolated_ssp(75, &target, 25);
    let (mean, _) = interleaved_power(76, &light, 60, &target, 40);
    let mean = mean.expect("LOIs landed (a >1 ms kernel always catches logs)");
    let effect = (mean - iso).abs() / iso;
    assert!(
        effect < 0.25,
        "CB-8K-GEMM should be nearly immune to predecessors, effect {:.0}%",
        effect * 100.0
    );
}
