//! End-to-end integration: the FinGraV runner profiles every kernel of the
//! paper's fourteen-kernel suite on a fresh simulated session.

use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite::{self, SuiteClass};

fn quick_runner_config(runs: u32) -> RunnerConfig {
    RunnerConfig::quick(runs)
}

#[test]
fn every_suite_kernel_profiles_cleanly() {
    let machine = SimConfig::default().machine.clone();
    for (i, sk) in suite::full_suite(&machine).iter().enumerate() {
        let mut gpu =
            Simulation::new(SimConfig::default(), 1000 + i as u64).expect("default config valid");
        let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(30));
        let report = runner
            .profile(&sk.desc)
            .unwrap_or_else(|e| panic!("{} failed: {e}", sk.label));

        assert_eq!(report.label, sk.label);
        assert!(report.exec_time_ns > 0, "{}: zero exec time", sk.label);
        assert!(report.golden_runs > 0, "{}: no golden runs", sk.label);
        assert!(
            report.golden_runs <= report.runs_executed,
            "{}: more golden than executed",
            sk.label
        );
        assert!(
            !report.run_profile.is_empty(),
            "{}: empty run profile",
            sk.label
        );
        assert!(
            report.ssp_loi_count() > 0,
            "{}: no SSP LOIs harvested",
            sk.label
        );
        let ssp = report
            .ssp_mean_total_w
            .unwrap_or_else(|| panic!("{}: no SSP power", sk.label));
        // Plausible power band for a 750 W-class module.
        assert!(
            (150.0..=1_000.0).contains(&ssp),
            "{}: SSP power {ssp} W out of band",
            sk.label
        );
        assert!(report.ssp_index >= report.sse_index);
        assert!(report.executions_per_run > report.ssp_index);
    }
}

#[test]
fn compute_bound_gemms_run_hotter_than_memory_bound_gemvs() {
    let machine = SimConfig::default().machine.clone();
    let mut cb_min = f64::INFINITY;
    let mut mb_max: f64 = 0.0;
    for (i, sk) in suite::gemm_suite(&machine).iter().enumerate() {
        let mut gpu =
            Simulation::new(SimConfig::default(), 2000 + i as u64).expect("default config valid");
        let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(40));
        let ssp = runner
            .profile(&sk.desc)
            .expect("profiles")
            .ssp_mean_total_w
            .expect("SSP LOIs present");
        match sk.class {
            SuiteClass::Gemm(_) => cb_min = cb_min.min(ssp),
            SuiteClass::Gemv(_) => mb_max = mb_max.max(ssp),
            SuiteClass::Collective(_) => unreachable!("gemm suite only"),
        }
    }
    assert!(
        cb_min > mb_max + 100.0,
        "CB GEMMs ({cb_min:.0} W min) must clearly out-draw MB GEMVs ({mb_max:.0} W max)"
    );
}

#[test]
fn ssp_index_scales_with_window_to_exec_ratio() {
    // A ~50 us kernel needs ~20x more executions to fill the 1 ms window
    // than a ~1.5 ms kernel needs.
    let machine = SimConfig::default().machine.clone();
    let mut gpu = Simulation::new(SimConfig::default(), 3000).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(20));
    let short = runner.profile(&suite::cb_gemm(&machine, 2048)).expect("2k");

    let mut gpu = Simulation::new(SimConfig::default(), 3001).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(20));
    let long = runner.profile(&suite::cb_gemm(&machine, 8192)).expect("8k");

    assert!(
        short.ssp_index >= long.ssp_index + 8,
        "short kernel SSP index {} vs long {}",
        short.ssp_index,
        long.ssp_index
    );
}

#[test]
fn throttling_detected_only_for_heavy_gemms() {
    let machine = SimConfig::default().machine.clone();

    let mut gpu = Simulation::new(SimConfig::default(), 3100).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(16));
    let heavy = runner.profile(&suite::cb_gemm(&machine, 8192)).expect("8k");
    assert!(
        heavy.throttle_detected,
        "CB-8K-GEMM must show the excursion"
    );

    let mut gpu = Simulation::new(SimConfig::default(), 3101).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(16));
    let light = runner
        .profile(&suite::mb_gemv(&machine, 4096))
        .expect("gemv");
    assert!(
        !light.throttle_detected,
        "a memory-bound GEMV must not trip the throttle detector"
    );
}

#[test]
fn reports_are_deterministic_per_seed() {
    let machine = SimConfig::default().machine.clone();
    let run = |seed: u64| {
        let mut gpu = Simulation::new(SimConfig::default(), seed).expect("valid");
        let mut runner = FingravRunner::new(&mut gpu, quick_runner_config(12));
        runner.profile(&suite::cb_gemm(&machine, 4096)).expect("4k")
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}
