//! Columnar `ProfileStore` guarantees: lossless round trips through the
//! binary on-disk format and the JSON fallback, equivalence of columnar
//! and legacy AoS stitching, robust rejection of damaged files, byte-for-
//! byte CSV stability against pre-refactor golden fixtures, and binary
//! artefact bit-identity across campaign worker counts.

use fingrav::baselines::common::BaselineConfig;
use fingrav::baselines::unsynchronized;
use fingrav::core::backend::SimulationFactory;
use fingrav::core::campaign::Campaign;
use fingrav::core::executor::CampaignExecutor;
use fingrav::core::profile::{
    loi_points, place_logs, push_loi_points, push_run_profile_points, run_profile_points,
    PowerProfile, ProfileAxis, ProfileKind,
};
use fingrav::core::report::profile_to_csv;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::core::store::{ProfileStore, StoreCodecError};
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;
use proptest::prelude::*;

mod common;
use common::{build_store, build_trace, identity_sync};

// ---------------------------------------------------------------------
// Property: store ⇄ binary ⇄ JSON round trips
// ---------------------------------------------------------------------

proptest! {
    /// Binary encode → decode is lossless and re-encodes bit-identically;
    /// the JSON fallback round-trips to an equal store.
    #[test]
    fn store_round_trips_through_binary_and_json(
        runs in prop::collection::vec(0u32..500, 0..120),
        vals in prop::collection::vec(-1.0e7f64..1.0e7, 0..120),
        execs in prop::collection::vec(0u32..64, 0..120),
    ) {
        let store = build_store(&runs, &vals, &execs);

        let bytes = store.to_bytes();
        prop_assert_eq!(bytes.len(), store.encoded_len());
        let restored = match ProfileStore::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(&restored, &store);
        prop_assert_eq!(restored.to_bytes(), bytes);
        prop_assert!(store.diff(&restored).is_identical());

        let json = serde_json::to_string(&store).expect("serializes");
        let from_json: ProfileStore = match serde_json::from_str(&json) {
            Ok(s) => s,
            Err(e) => return Err(format!("json decode failed: {e}")),
        };
        prop_assert_eq!(&from_json, &store);
    }

    /// Any truncation of a valid encoding is rejected as `Truncated`,
    /// never decoded into a wrong store and never a panic.
    #[test]
    fn truncated_encodings_never_decode(
        runs in prop::collection::vec(0u32..500, 1..40),
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..40),
        execs in prop::collection::vec(0u32..64, 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let store = build_store(&runs, &vals, &execs);
        let bytes = store.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        match ProfileStore::from_bytes(&bytes[..cut]) {
            Err(StoreCodecError::Truncated(_)) => {}
            other => return Err(format!("cut at {cut}: expected Truncated, got {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Property: columnar stitching ≡ legacy AoS stitching on random traces
// ---------------------------------------------------------------------

proptest! {
    /// The columnar appenders and the legacy AoS builders stitch random
    /// traces into equal stores, for run profiles and filtered LOI sets.
    #[test]
    fn columnar_stitching_matches_legacy_aos(
        starts in prop::collection::vec(0u64..5_000_000, 1..24),
        ticks in prop::collection::vec(0u64..600_000, 0..100),
        run in 0u32..1000,
    ) {
        let trace = build_trace(&starts, &ticks);
        let placed = place_logs(&trace, &identity_sync());

        let legacy_run = ProfileStore::from_points(run_profile_points(run, &placed));
        let mut columnar_run = ProfileStore::new();
        push_run_profile_points(&mut columnar_run, run, &placed);
        prop_assert_eq!(&columnar_run, &legacy_run);
        prop_assert_eq!(columnar_run.to_bytes(), legacy_run.to_bytes());

        let select = |pos: usize| pos.is_multiple_of(2);
        let legacy_loi = ProfileStore::from_points(loi_points(run, &placed, select));
        let mut columnar_loi = ProfileStore::new();
        push_loi_points(&mut columnar_loi, run, &placed, select);
        prop_assert_eq!(&columnar_loi, &legacy_loi);

        // Every LOI is marked in-execution; the run profile's bitmap
        // popcount equals the number of placed logs inside executions.
        prop_assert_eq!(columnar_loi.in_exec_count(), columnar_loi.len());
        let inside = placed.iter().filter(|l| l.containing_exec.is_some()).count();
        prop_assert_eq!(columnar_run.in_exec_count(), inside);
    }
}

// ---------------------------------------------------------------------
// Corrupt-header rejection (integration-level)
// ---------------------------------------------------------------------

#[test]
fn corrupt_headers_are_rejected_with_specific_errors() {
    let store = build_store(&[1, 2, 3], &[10.0, -20.0, 30.0], &[1, 3, 5]);
    let good = store.to_bytes();

    let mut bad_magic = good.clone();
    bad_magic[..8].copy_from_slice(b"NOTPROF!");
    assert!(matches!(
        ProfileStore::from_bytes(&bad_magic),
        Err(StoreCodecError::BadMagic(_))
    ));

    let mut future_version = good.clone();
    future_version[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        ProfileStore::from_bytes(&future_version),
        Err(StoreCodecError::UnsupportedVersion(7))
    ));

    let mut absurd_len = good.clone();
    absurd_len[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        ProfileStore::from_bytes(&absurd_len),
        Err(StoreCodecError::Corrupt(_))
    ));

    // A header alone (no column data) is truncated, not corrupt.
    assert!(matches!(
        ProfileStore::from_bytes(&good[..24]),
        Err(StoreCodecError::Truncated(_))
    ));
}

// ---------------------------------------------------------------------
// Golden CSV bytes: the refactor must not move a single byte
// ---------------------------------------------------------------------

/// `profile_to_csv` output against fixtures generated by the pre-refactor
/// `Vec<ProfilePoint>` implementation (same seeds, same kernels). Any
/// drift in sort order, sentinel rendering, or float formatting fails
/// here byte-for-byte.
#[test]
fn profile_csvs_match_pre_refactor_golden_bytes() {
    let machine = SimConfig::default().machine.clone();
    let kernel = suite::cb_gemm(&machine, 4096);

    let mut sim = Simulation::new(SimConfig::default(), 0xF1C4).expect("valid");
    let mut runner = FingravRunner::new(&mut sim, RunnerConfig::quick(12));
    let report = runner.profile(&kernel).expect("profiles");
    assert_eq!(
        profile_to_csv(&report.run_profile, ProfileAxis::RunTime),
        include_str!("data/golden_run_profile.csv"),
        "run-profile CSV drifted from the pre-refactor bytes"
    );
    assert_eq!(
        profile_to_csv(&report.ssp_profile, ProfileAxis::Toi),
        include_str!("data/golden_ssp_toi.csv"),
        "SSP-profile CSV drifted from the pre-refactor bytes"
    );

    let mut sim = Simulation::new(SimConfig::default(), 0xBEEF).expect("valid");
    let cfg = BaselineConfig {
        runs: 6,
        executions_per_run: 10,
        ..BaselineConfig::default()
    };
    let unsynced = unsynchronized::profile(&mut sim, &kernel, &cfg).expect("baseline");
    assert_eq!(
        profile_to_csv(&unsynced, ProfileAxis::RunTime),
        include_str!("data/golden_unsync_runtime.csv"),
        "unsynchronized-baseline CSV (u32::MAX sentinel rows) drifted"
    );
}

// ---------------------------------------------------------------------
// Binary artefacts are bit-identical across campaign worker counts
// ---------------------------------------------------------------------

#[test]
fn store_binary_artifact_identical_across_worker_counts() {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add(suite::cb_gemm(&machine, 2048));
    campaign.add(suite::mb_gemv(&machine, 4096));
    let factory = SimulationFactory::new(SimConfig::default(), 9001);

    let encode = |executor: CampaignExecutor| -> Vec<Vec<u8>> {
        executor
            .run(&campaign, &factory)
            .expect("campaign profiles")
            .reports
            .iter()
            .flat_map(|r| {
                [
                    r.run_profile.store.to_bytes(),
                    r.sse_profile.store.to_bytes(),
                    r.ssp_profile.store.to_bytes(),
                ]
            })
            .collect()
    };

    let serial = encode(CampaignExecutor::serial());
    for workers in [2, 4] {
        let parallel = encode(CampaignExecutor::new(workers));
        assert_eq!(
            serial, parallel,
            "store bytes changed under {workers} workers"
        );
    }

    // And the persisted artefacts decode back to the in-memory stores.
    for bytes in &serial {
        let restored = ProfileStore::from_bytes(bytes).expect("decodes");
        assert_eq!(restored.to_bytes(), *bytes);
    }
}

// ---------------------------------------------------------------------
// The labelled profile wrapper round-trips with its store intact
// ---------------------------------------------------------------------

#[test]
fn power_profile_json_round_trip_keeps_columns() {
    let store = build_store(&[0, 1, 2, 3], &[5.0, -2.5, 7.25, 0.0], &[0, 1, 2, 3]);
    let profile = PowerProfile {
        label: "CB-4K-GEMM".to_string(),
        kind: ProfileKind::Custom("roundtrip".to_string()),
        store,
    };
    let json = serde_json::to_string(&profile).expect("serializes");
    let restored: PowerProfile = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(restored, profile);
    assert!(profile.store.diff(&restored.store).is_identical());
}
