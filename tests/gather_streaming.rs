//! Streaming-gather memory guarantee: merging an 8-shard checkpoint with
//! [`gather_stores`] peaks at roughly *one* shard's worth of transient
//! heap beyond the exactly-sized output stores — not all eight resident
//! at once — measured with a counting global allocator. The gathered
//! stores are byte-identical to the decode-everything merge, the output
//! columns are sized exactly (no growth reallocation), and a tampered
//! crash-window duplicate is still rejected with the shard ids and the
//! first differing column named.
//!
//! This file intentionally holds a single `#[test]`: the allocator
//! counters are process-global, so a second concurrently-running test
//! would pollute the peak measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use fingrav::core::campaign::Campaign;
use fingrav::core::checkpoint::{
    campaign_digest, gather, gather_stores, CampaignManifest, CheckpointDir, CheckpointError,
    EntryArtifact, EntryStatus,
};
use fingrav::core::guidance::GuidanceEntry;
use fingrav::core::profile::{PowerProfile, ProfileKind};
use fingrav::core::runner::{KernelPowerReport, RunnerConfig};
use fingrav::core::store::ProfileStore;
use fingrav::sim::kernel::KernelDesc;
use fingrav::sim::power::Activity;
use fingrav::sim::time::SimDuration;

mod common;
use common::build_store;

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

fn on_alloc(n: usize) {
    let now = CURRENT.fetch_add(n, Ordering::SeqCst) + n;
    PEAK.fetch_max(now, Ordering::SeqCst);
}

fn on_dealloc(n: usize) {
    CURRENT.fetch_sub(n, Ordering::SeqCst);
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the wrapper only adjusts counters around the
// delegated calls and never fabricates or retains pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: caller contract is forwarded unchanged to `System.alloc`.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same delegation argument as the impl-level comment.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our `alloc`, which returned
        // them from `System.alloc` with the same layout.
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    // SAFETY: same delegation argument as the impl-level comment.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller contract is forwarded unchanged to `System.realloc`.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak to the current level and returns the current level.
fn reset_peak() -> usize {
    let now = CURRENT.load(Ordering::SeqCst);
    PEAK.store(now, Ordering::SeqCst);
    now
}

// ---------------------------------------------------------------------
// Fixture: an 8-shard checkpoint with large per-entry profiles
// ---------------------------------------------------------------------

const ENTRIES: usize = 8;
const RUN_POINTS: usize = 20_000;
const LOI_POINTS: usize = 2_000;

fn kernel(name: &str, us: u64) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        base_exec: SimDuration::from_micros(us),
        freq_insensitive_frac: 0.4,
        activity: Activity::new(0.5, 0.4, 0.3),
        compute_utilization: 0.35,
        flops: 1e10,
        hbm_bytes: 1e7,
        llc_bytes: 1e8,
        workgroups: 128,
    }
}

/// Deterministic pseudo-random columns (SplitMix64), `n` points.
fn synth_store(seed: u64, n: usize) -> ProfileStore {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let runs: Vec<u32> = (0..n).map(|_| (next() % 500) as u32).collect();
    let vals: Vec<f64> = (0..n)
        .map(|_| (next() % 2_000_000) as f64 - 1_000_000.0)
        .collect();
    let execs: Vec<u32> = (0..n).map(|_| (next() % 64) as u32).collect();
    build_store(&runs, &vals, &execs)
}

fn report_for(label: &str, seed: u64) -> KernelPowerReport {
    KernelPowerReport {
        label: label.into(),
        exec_time_ns: 123_456,
        guidance: GuidanceEntry {
            min_exec: SimDuration::from_micros(50),
            max_exec: Some(SimDuration::from_micros(500)),
            runs: 12,
            loi_interval: SimDuration::from_micros(2),
            margin_frac: 0.05,
        },
        margin_frac: 0.05,
        sse_index: 3,
        ssp_index: 5,
        executions_per_run: 40,
        runs_executed: 12,
        golden_runs: 9,
        throttle_detected: false,
        read_delay_ns: 850.0,
        estimated_drift_ppm: Some(1.25),
        run_profile: PowerProfile {
            label: label.into(),
            kind: ProfileKind::Run,
            store: synth_store(seed, RUN_POINTS),
        },
        sse_profile: PowerProfile {
            label: label.into(),
            kind: ProfileKind::Sse,
            store: synth_store(seed ^ 0xA5A5, LOI_POINTS),
        },
        ssp_profile: PowerProfile {
            label: label.into(),
            kind: ProfileKind::Ssp,
            store: synth_store(seed ^ 0x5A5A, LOI_POINTS),
        },
        sse_mean_total_w: Some(321.5),
        ssp_mean_total_w: Some(318.25),
        sse_vs_ssp_error: Some(0.01),
    }
}

/// Exact heap bytes of an `n`-point store with exactly-sized columns:
/// two u32 columns, six f64 columns, one bitmap word per 64 points.
fn exact_store_heap(n: usize) -> usize {
    n * 4 * 2 + n * 8 * 6 + n.div_ceil(64) * 8
}

fn scratch_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fingrav-gather-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------
// The single test (see module docs on why it must stay single)
// ---------------------------------------------------------------------

#[test]
fn gather_streams_one_shard_at_a_time() {
    // -- build the 8-shard checkpoint ----------------------------------
    let mut campaign = Campaign::new(RunnerConfig::quick(5));
    for i in 0..ENTRIES {
        campaign.add(kernel(&format!("stream-k{i}"), 60 + 10 * i as u64));
    }
    let digest = campaign_digest(&campaign);

    let root = scratch_root("stream");
    std::fs::remove_dir_all(&root).ok();
    let dir = CheckpointDir::create(&root).expect("checkpoint dir creates");
    let mut manifest = CampaignManifest::plan_remote(&campaign);
    let mut artifacts = Vec::new();
    let mut max_entry_file = 0usize;
    for (i, entry) in manifest.entries.iter_mut().enumerate() {
        // One shard per entry: the 8-shard layout of the memory claim.
        entry.shard = i as u32;
        entry.status = EntryStatus::Done;
        let artifact = EntryArtifact {
            index: i as u32,
            config_digest: digest,
            report: report_for(&format!("stream-k{i}"), 0xC0FFEE + i as u64),
        };
        max_entry_file = max_entry_file.max(artifact.to_bytes().len());
        dir.write_entry(i as u32, &artifact).expect("entry writes");
        artifacts.push(artifact);
    }
    dir.write_manifest(&manifest).expect("manifest writes");

    let run_total = ENTRIES * RUN_POINTS;
    let loi_total = ENTRIES * LOI_POINTS;
    let output_heap = exact_store_heap(run_total) + 2 * exact_store_heap(loi_total);

    // -- probe: gather_stores peaks at output + ~one shard -------------
    let before = reset_peak();
    let stores = gather_stores(&dir, &campaign).expect("gather_stores succeeds");
    let peak_extra = PEAK.load(Ordering::SeqCst) - before;

    // The transient budget: the three exactly-sized outputs, at most two
    // entry files resident at once (a primary and a would-be duplicate on
    // the non-mmap fallback; the mmap path keeps them off the heap
    // entirely), and small change for paths/manifest/scratch.
    let budget = output_heap + 2 * max_entry_file + 256 * 1024;
    assert!(
        peak_extra <= budget,
        "gather_stores peaked at {peak_extra} extra heap bytes; \
         budget is {budget} (output {output_heap} + 2 x {max_entry_file} entry files + slack). \
         All {ENTRIES} shards together would be ~{} bytes",
        ENTRIES * max_entry_file + output_heap,
    );

    // -- output columns are sized exactly: no growth reallocation ------
    assert_eq!(stores.run.len(), run_total);
    assert_eq!(stores.sse.len(), loi_total);
    assert_eq!(stores.ssp.len(), loi_total);
    assert_eq!(stores.run.heap_bytes(), exact_store_heap(run_total));
    assert_eq!(stores.sse.heap_bytes(), exact_store_heap(loi_total));
    assert_eq!(stores.ssp.heap_bytes(), exact_store_heap(loi_total));

    // -- byte-identical to the decode-everything merge -----------------
    let mut expect_run = ProfileStore::new();
    let mut expect_sse = ProfileStore::new();
    let mut expect_ssp = ProfileStore::new();
    for a in &artifacts {
        expect_run.extend_from(&a.report.run_profile.store);
        expect_sse.extend_from(&a.report.sse_profile.store);
        expect_ssp.extend_from(&a.report.ssp_profile.store);
    }
    assert_eq!(stores.run.to_bytes(), expect_run.to_bytes());
    assert_eq!(stores.sse.to_bytes(), expect_sse.to_bytes());
    assert_eq!(stores.ssp.to_bytes(), expect_ssp.to_bytes());

    // -- gather() (with reports) agrees with the artifacts -------------
    let gathered = gather(&dir, &campaign).expect("gather succeeds");
    assert_eq!(gathered.run.to_bytes(), stores.run.to_bytes());
    assert_eq!(gathered.report.reports.len(), ENTRIES);
    for (got, want) in gathered.report.reports.iter().zip(&artifacts) {
        assert_eq!(got, &want.report);
    }

    // -- a tampered crash-window duplicate is named, not merged --------
    let mut tampered = artifacts[0].clone();
    // Perturb one xcd sample: same label/index/digest, different bytes.
    let store = &mut tampered.report.run_profile.store;
    let mut points: Vec<_> = (0..store.len()).map(|i| store.point(i)).collect();
    points[7].power.xcd += 1.0;
    tampered.report.run_profile.store = ProfileStore::from_points(points);
    dir.write_entry(7, &tampered).expect("duplicate writes");

    let err = gather_stores(&dir, &campaign).expect_err("tampered duplicate must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("shard 0") && msg.contains("shard 7"),
        "error must name both shards: {msg}"
    );
    assert!(
        msg.contains("column `xcd`"),
        "error must name the differing column: {msg}"
    );
    assert!(
        matches!(err, CheckpointError::Corrupt(_)),
        "typed Corrupt error expected, got {err:?}"
    );

    std::fs::remove_dir_all(&root).ok();
}
