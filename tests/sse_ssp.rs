//! SSE/SSP power-profile differentiation (paper Section V-C1): the error
//! ordering across kernel sizes and the direction of the bias.

use fingrav::core::runner::{FingravRunner, KernelPowerReport, RunnerConfig};
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;

fn profile(seed: u64, n: u64, runs: u32) -> KernelPowerReport {
    let machine = SimConfig::default().machine.clone();
    let mut gpu = Simulation::new(SimConfig::default(), seed).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(runs));
    runner
        .profile(&suite::cb_gemm(&machine, n))
        .expect("profiles")
}

#[test]
fn sse_underestimates_ssp_for_sub_window_kernels() {
    // CB-2K-GEMM (~50 us) is far below the 1 ms averaging window: the SSE
    // measurement blends mostly idle samples.
    let r = profile(51, 2048, 80);
    let sse = r.sse_mean_total_w.expect("SSE LOIs landed");
    let ssp = r.ssp_mean_total_w.expect("SSP LOIs landed");
    assert!(sse < ssp, "SSE {sse:.0} must underestimate SSP {ssp:.0}");
    let err = r.sse_vs_ssp_error.expect("both profiles present");
    assert!(
        err > 0.35,
        "expected a large SSE/SSP gap, got {:.0}%",
        err * 100.0
    );
}

#[test]
fn error_shrinks_as_execution_time_grows() {
    // The paper's 80% / 36% / 20% ordering (2K > 4K > 8K), reproduced in
    // shape: the error is monotone in window-to-exec ratio.
    let e2 = profile(52, 2048, 60).sse_vs_ssp_error.expect("2K error");
    let e4 = profile(53, 4096, 60).sse_vs_ssp_error.expect("4K error");
    let e8 = profile(54, 8192, 30).sse_vs_ssp_error.expect("8K error");
    assert!(
        e2 > e4 && e4 > e8,
        "error ordering violated: 2K {:.0}% / 4K {:.0}% / 8K {:.0}%",
        e2 * 100.0,
        e4 * 100.0,
        e8 * 100.0
    );
    assert!(
        e8 < 0.2,
        "above-window kernel error should be small, got {e8}"
    );
}

#[test]
fn ssp_profile_is_a_plateau() {
    // Within the SSP profile, power must not vary substantially (that is
    // its definition). Allow modest spread from firmware oscillation.
    let r = profile(55, 2048, 80);
    let (_, ys) = r.ssp_profile.series(
        fingrav::core::profile::ProfileAxis::Toi,
        fingrav::core::profile::PowerAxis::Total,
    );
    assert!(ys.len() >= 5, "need a populated SSP profile");
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let max_dev = ys
        .iter()
        .map(|y| (y - mean).abs() / mean)
        .fold(0.0_f64, f64::max);
    assert!(
        max_dev < 0.15,
        "SSP points should be stable, max deviation {:.0}%",
        max_dev * 100.0
    );
}

#[test]
fn warmups_detected_near_simulator_truth() {
    // The simulator applies three warm-up factors; on a kernel without
    // cap/throttle dynamics (which stretch later executions and blur the
    // time-based criterion) the methodology detects stabilization at that
    // count.
    use fingrav::sim::{Activity, KernelDesc, SimDuration};
    let clean = KernelDesc {
        name: "warmup-probe".into(),
        base_exec: SimDuration::from_micros(200),
        freq_insensitive_frac: 0.9, // clock-insensitive: pure warm-up signal
        activity: Activity::new(0.4, 0.3, 0.3),
        compute_utilization: 0.4,
        flops: 1e10,
        hbm_bytes: 1e7,
        llc_bytes: 1e8,
        workgroups: 256,
    };
    let mut gpu = Simulation::new(SimConfig::default(), 56).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(15));
    let r = runner.profile(&clean).expect("profiles");
    assert!(
        (2..=4).contains(&r.sse_index),
        "SSE index {} should be near the 3 configured warm-ups",
        r.sse_index
    );
}

#[test]
fn run_profile_shows_ramp_for_short_kernels() {
    // Fig. 8's shape: the first logs of a run sit well below the plateau.
    let r = profile(57, 2048, 60);
    let (xs, ys) = r.run_profile.series(
        fingrav::core::profile::ProfileAxis::RunTime,
        fingrav::core::profile::PowerAxis::Total,
    );
    // Points inside the first averaging window vs the top decile.
    let early: Vec<f64> = xs
        .iter()
        .zip(&ys)
        .filter(|&(&x, _)| (0.0..0.5e6).contains(&x))
        .map(|(_, &y)| y)
        .collect();
    let peak = ys.iter().cloned().fold(0.0_f64, f64::max);
    assert!(!early.is_empty(), "need early-window points");
    let early_mean = early.iter().sum::<f64>() / early.len() as f64;
    assert!(
        early_mean < 0.75 * peak,
        "early power {early_mean:.0} W should sit well below the peak {peak:.0} W"
    );
}
