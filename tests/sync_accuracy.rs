//! CPU-GPU time-sync accuracy against simulator ground truth.
//!
//! The simulator knows the true mapping between GPU ticks and CPU time;
//! the methodology must recover it from observable reads only. These tests
//! quantify that recovery and show the failure modes of the baselines.

use fingrav::baselines::common::{collect_run, BaselineConfig};
use fingrav::baselines::lang;
use fingrav::core::backend::PowerBackend;
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::{Activity, KernelDesc, SimConfig, SimDuration, Simulation};

fn kernel() -> KernelDesc {
    KernelDesc {
        name: "sync-k".into(),
        base_exec: SimDuration::from_micros(150),
        freq_insensitive_frac: 0.3,
        activity: Activity::new(0.8, 0.5, 0.4),
        compute_utilization: 0.6,
        flops: 1.0,
        hbm_bytes: 1.0,
        llc_bytes: 1.0,
        workgroups: 128,
    }
}

/// True CPU time of a tick value, via simulator ground truth.
fn true_cpu_ns(sim: &Simulation, ticks: u64) -> f64 {
    let sim_t = sim
        .gpu_clock()
        .to_sim(fingrav::sim::GpuTicks::from_raw(ticks));
    sim.cpu_clock().now(sim_t).as_nanos() as f64
}

/// Mean absolute sync error over a trace's power logs, ns.
fn mean_error(sim: &Simulation, trace: &fingrav::sim::RunTrace, sync: &TimeSync) -> f64 {
    let errs: Vec<f64> = trace
        .power_logs
        .iter()
        .map(|log| {
            let t = log.ticks.as_raw();
            (sync.cpu_ns_of_ticks(t) - true_cpu_ns(sim, t)).abs()
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

#[test]
fn calibrated_sync_is_sub_microsecond() {
    let mut sim = Simulation::new(SimConfig::default(), 11).expect("valid");
    let k = PowerBackend::register_kernel(&mut sim, &kernel()).expect("register");
    let cfg = BaselineConfig {
        runs: 1,
        executions_per_run: 10,
        ..BaselineConfig::default()
    };
    let trace = collect_run(&mut sim, k, &cfg, true, false).expect("run");
    let read = trace.timestamp_reads[0];
    let calib = ReadDelayCalibration {
        median_rtt_ns: read.rtt_ns(),
        assumed_sample_frac: 0.5,
    };
    let sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&sim));
    let err = mean_error(&sim, &trace, &sync);
    assert!(err < 2_000.0, "calibrated sync error {err:.0} ns");
}

#[test]
fn fingrav_sync_beats_lang_baseline() {
    let mut sim = Simulation::new(SimConfig::default(), 13).expect("valid");
    let k = PowerBackend::register_kernel(&mut sim, &kernel()).expect("register");
    let cfg = BaselineConfig {
        runs: 1,
        executions_per_run: 10,
        ..BaselineConfig::default()
    };
    let trace = collect_run(&mut sim, k, &cfg, true, false).expect("run");

    let read = trace.timestamp_reads[0];
    let calib = ReadDelayCalibration {
        median_rtt_ns: read.rtt_ns(),
        assumed_sample_frac: 0.5,
    };
    let fingrav_sync = TimeSync::from_anchor(&read, &calib, PowerBackend::gpu_counter_hz(&sim));
    let lang_sync = lang::lang_sync(&sim, &trace).expect("lang sync");

    let fingrav_err = mean_error(&sim, &trace, &fingrav_sync);
    let lang_err = mean_error(&sim, &trace, &lang_sync);
    assert!(
        fingrav_err < lang_err,
        "delay-calibrated sync ({fingrav_err:.0} ns) must beat the zero-delay \
         Lang baseline ({lang_err:.0} ns)"
    );
}

#[test]
fn two_anchor_sync_cancels_heavy_drift() {
    // Amplify the counter drift so single-anchor error dominates.
    let mut cfg = SimConfig::default();
    cfg.clocks.gpu_drift_ppm = 400.0;
    let mut sim = Simulation::new(cfg, 17).expect("valid");
    let k = PowerBackend::register_kernel(&mut sim, &kernel()).expect("register");
    let bcfg = BaselineConfig {
        runs: 1,
        executions_per_run: 100, // a long run: ~20 ms of drift accumulation
        ..BaselineConfig::default()
    };
    let trace = collect_run(&mut sim, k, &bcfg, true, false).expect("run");
    let first = trace.timestamp_reads[0];
    let last = *trace.timestamp_reads.last().expect("two reads");
    let calib = ReadDelayCalibration {
        median_rtt_ns: first.rtt_ns(),
        assumed_sample_frac: 0.5,
    };

    let single = TimeSync::from_anchor(&first, &calib, PowerBackend::gpu_counter_hz(&sim));
    let double = TimeSync::from_two_anchors(&first, &last, &calib).expect("two anchors");

    let single_err = mean_error(&sim, &trace, &single);
    let double_err = mean_error(&sim, &trace, &double);
    assert!(
        double_err * 2.0 < single_err,
        "two-anchor sync ({double_err:.0} ns) must cancel drift that breaks \
         single-anchor sync ({single_err:.0} ns)"
    );

    // And the drift estimate should land near the configured truth.
    let est = double.estimated_drift_ppm(PowerBackend::gpu_counter_hz(&sim));
    assert!(
        (est - 400.0).abs() < 120.0,
        "estimated drift {est:.0} ppm vs true 400 ppm"
    );
}

#[test]
fn calibration_is_robust_to_rtt_outliers() {
    let mut sim = Simulation::new(SimConfig::default(), 19).expect("valid");
    // Collect many reads; the calibration uses the median RTT, so a few
    // slow reads must not shift the delay estimate.
    let script = {
        let mut b = fingrav::sim::Script::builder();
        for _ in 0..64 {
            b = b.read_gpu_timestamp();
        }
        b.build()
    };
    let trace = sim.run_script(&script).expect("script");
    let calib = ReadDelayCalibration::from_reads(&trace.timestamp_reads).expect("calib");
    let nominal_rtt = SimConfig::default().host.timestamp_rtt.as_nanos() as f64;
    assert!(
        (calib.delay_ns() - nominal_rtt * 0.5).abs() < nominal_rtt * 0.25,
        "delay {} vs nominal half-rtt {}",
        calib.delay_ns(),
        nominal_rtt * 0.5
    );
}
