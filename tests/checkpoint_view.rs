//! Owned-vs-view differential conformance for the `FGRVCKPT` entry
//! artifact: [`EntryArtifactView::parse`] must perform exactly the
//! validation of [`EntryArtifact::from_bytes`] — same accepted inputs,
//! same typed error (variant *and* payload, compared through `Debug`)
//! on every truncation, bit flip, section confusion, and corrupt
//! length field — and `to_artifact()` must decode to the same value,
//! pinned NaN-safely through canonical re-encoding. The companion
//! `FGRVPROF` suite lives in `store_view.rs`; the randomized
//! cross-format sweep in `fgrv-fuzz` runs the same oracle over mutated
//! inputs (see `docs/FUZZING.md`).

use fingrav::core::checkpoint::{
    CampaignManifest, CheckpointError, EntryArtifact, EntryArtifactView,
};
use proptest::prelude::*;

mod common;
use common::{assert_all_truncations_rejected, golden_entry};

/// Two codec results agree when both succeed with artifacts whose
/// canonical encodings match byte-for-byte (NaN-safe, unlike the
/// derived `PartialEq` on `f64` payloads) or both fail with the same
/// error, compared through `Debug` so the variant and its payload
/// (block label, magic bytes, message) must coincide.
fn assert_same_outcome(
    owned: Result<EntryArtifact, CheckpointError>,
    view: Result<EntryArtifact, CheckpointError>,
    what: &str,
) {
    match (owned, view) {
        (Ok(a), Ok(b)) => assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "{what}: owned and view decoded different artifacts"
        ),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{what}: owned and view failed differently"
        ),
        (a, b) => panic!("{what}: owned {a:?} vs view {b:?} disagree on success"),
    }
}

fn via_view(bytes: &[u8]) -> Result<EntryArtifact, CheckpointError> {
    EntryArtifactView::parse(bytes).map(|v| v.to_artifact())
}

// ---------------------------------------------------------------------
// Accepted inputs: the lazy route decodes the same artifact
// ---------------------------------------------------------------------

#[test]
fn view_of_golden_entry_equals_owned_decode() {
    let entry = golden_entry();
    let bytes = entry.to_bytes();

    let view = EntryArtifactView::parse(&bytes).expect("golden entry parses as a view");
    assert_eq!(view.index, entry.index);
    assert_eq!(view.config_digest, entry.config_digest);
    assert_eq!(view.label(), entry.report.label);

    // The borrowed per-profile stores agree bit-for-bit with the owned
    // profiles (diff is the NaN-safe comparison).
    for (view_store, owned_profile) in [
        (view.run_store(), &entry.report.run_profile),
        (view.sse_store(), &entry.report.sse_profile),
        (view.ssp_store(), &entry.report.ssp_profile),
    ] {
        assert!(owned_profile.store.diff_view(view_store).is_identical());
    }

    // Materialising the view reproduces the owned decode, and both
    // round-trip back to the source bytes.
    let owned = EntryArtifact::from_bytes(&bytes).expect("golden entry decodes");
    assert_eq!(view.to_artifact().to_bytes(), owned.to_bytes());
    assert_eq!(owned.to_bytes(), bytes);
}

// ---------------------------------------------------------------------
// Damage suites: truncation, bit flips, section confusion, bad lengths
// ---------------------------------------------------------------------

/// Every truncation is `Truncated` on the view path, and the two paths
/// report the identical block label at every cut.
#[test]
fn every_truncation_rejected_identically() {
    let bytes = golden_entry().to_bytes();
    assert_all_truncations_rejected(
        &bytes,
        1,
        |cut| EntryArtifactView::parse(cut).map(|v| v.index),
        |e| matches!(e, CheckpointError::Truncated(_)),
    );
    for cut in 0..bytes.len() {
        assert_same_outcome(
            EntryArtifact::from_bytes(&bytes[..cut]),
            via_view(&bytes[..cut]),
            &format!("cut at {cut}"),
        );
    }
}

#[test]
fn trailing_bytes_rejected_identically() {
    let mut bytes = golden_entry().to_bytes();
    bytes.extend_from_slice(b"JUNK");
    assert!(matches!(
        EntryArtifactView::parse(&bytes),
        Err(CheckpointError::Corrupt(msg)) if msg.contains("trailing")
    ));
    assert_same_outcome(
        EntryArtifact::from_bytes(&bytes),
        via_view(&bytes),
        "trailing bytes",
    );
}

/// Feeding a valid file of the wrong section kind to the view is
/// `Corrupt`, exactly as on the owned path.
#[test]
fn wrong_section_rejected_identically() {
    let manifest_bytes = common::golden_manifest().to_bytes();
    assert!(matches!(
        EntryArtifactView::parse(&manifest_bytes),
        Err(CheckpointError::Corrupt(_))
    ));
    assert_same_outcome(
        EntryArtifact::from_bytes(&manifest_bytes),
        via_view(&manifest_bytes),
        "manifest bytes read as an entry",
    );

    let entry_bytes = golden_entry().to_bytes();
    assert!(matches!(
        CampaignManifest::from_bytes(&entry_bytes),
        Err(CheckpointError::Corrupt(_))
    ));
}

/// An absurd label-length field (offset 28: 16-byte header + index +
/// digest) must be rejected before any allocation is sized from it, with
/// the identical error on both paths.
#[test]
fn absurd_embedded_lengths_rejected_identically() {
    let good = golden_entry().to_bytes();

    let mut absurd = good.clone();
    absurd[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        EntryArtifactView::parse(&absurd),
        Err(CheckpointError::Corrupt(_))
    ));
    assert_same_outcome(
        EntryArtifact::from_bytes(&absurd),
        via_view(&absurd),
        "absurd label length",
    );

    // Plausible (under the 2²⁰-byte string cap) but longer than the
    // buffer: truncation after at most one bounded chunk.
    let mut big = good;
    big[28..36].copy_from_slice(&(1_000_000u64).to_le_bytes());
    assert!(matches!(
        EntryArtifactView::parse(&big),
        Err(CheckpointError::Truncated(_))
    ));
    assert_same_outcome(
        EntryArtifact::from_bytes(&big),
        via_view(&big),
        "huge label length",
    );
}

proptest! {
    /// Arbitrary single-byte damage anywhere in the encoding — header,
    /// scalar fields, or inside one of the three embedded `FGRVPROF`
    /// blocks — yields the identical outcome on both paths: same
    /// success (artifacts with equal canonical encodings) or the same
    /// typed error. Neither path ever panics.
    #[test]
    fn bit_flips_fail_identically_on_both_paths(
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = golden_entry().to_bytes();
        let pos = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[pos] ^= flip;
        assert_same_outcome(
            EntryArtifact::from_bytes(&bytes),
            via_view(&bytes),
            &format!("byte {pos} xor {flip:#04x}"),
        );
    }

    /// Multi-site damage: several independent byte flips at once still
    /// keep the two paths in lockstep.
    #[test]
    fn scattered_damage_fails_identically(
        fracs in prop::collection::vec(0.0f64..1.0, 1..6),
        flips in prop::collection::vec(1u8..=255, 1..6),
    ) {
        let mut bytes = golden_entry().to_bytes();
        let n = fracs.len().min(flips.len());
        for i in 0..n {
            let pos = ((bytes.len() - 1) as f64 * fracs[i]) as usize;
            bytes[pos] ^= flips[i];
        }
        assert_same_outcome(
            EntryArtifact::from_bytes(&bytes),
            via_view(&bytes),
            &format!("{n} damage sites"),
        );
    }
}
