//! Generators shared by the codec-hardening integration tests
//! (`profile_store.rs`, `checkpoint_codec.rs`, `checkpoint_view.rs`,
//! `checkpoint_resume.rs`, `fuzz_regression.rs`): random columnar
//! stores, random traces, the deterministic golden `FGRVCKPT` fixtures,
//! and the systematic truncation/corruption drivers both the `FGRVPROF`
//! and `FGRVCKPT` adversarial suites run over.
//!
//! Each integration test is its own crate, so this module is compiled
//! per test binary; not every binary uses every helper.
#![allow(dead_code)] // per-binary compilation: see note above

use fingrav::core::binning::bin_durations;
use fingrav::core::checkpoint::{
    CampaignManifest, EntryArtifact, EntryStatus, ManifestEntry, StageCheckpoint,
};
use fingrav::core::guidance::GuidanceEntry;
use fingrav::core::profile::{PowerProfile, ProfileKind, ProfilePoint};
use fingrav::core::runner::{CollectedRun, KernelPowerReport};
use fingrav::core::stages::{RunCollection, SspArtifact, StitchedProfiles, TimingArtifact};
use fingrav::core::store::ProfileStore;
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::kernel::KernelHandle;
use fingrav::sim::telemetry::PowerLog;
use fingrav::sim::trace::{RunTrace, TimedExecution, TimestampRead};
use fingrav::sim::{ComponentPower, CpuTime, GpuTicks, SimDuration};

/// Builds a store from three independently drawn columns (zipped to the
/// shortest), with validity derived from the exec column.
pub fn build_store(runs: &[u32], vals: &[f64], execs: &[u32]) -> ProfileStore {
    let n = runs.len().min(vals.len()).min(execs.len());
    let mut store = ProfileStore::with_capacity(n);
    for i in 0..n {
        let valid = !execs[i].is_multiple_of(3);
        store.push(ProfilePoint {
            run: runs[i],
            exec_pos: valid.then_some(execs[i]),
            toi_ns: valid.then_some(vals[i].abs()),
            run_time_ns: vals[i],
            power: ComponentPower::new(
                vals[i] * 0.50,
                vals[i] * 0.25,
                vals[i] * 0.15,
                vals[i] * 0.10,
            ),
        });
    }
    store
}

/// Identity-ish sync: tick k ↦ cpu 10·k ns (100 MHz anchored at zero).
pub fn identity_sync() -> TimeSync {
    let read = TimestampRead {
        cpu_before: CpuTime::from_nanos(0),
        cpu_after: CpuTime::from_nanos(0),
        ticks: GpuTicks::from_raw(0),
    };
    let calib = ReadDelayCalibration {
        median_rtt_ns: 0,
        assumed_sample_frac: 0.5,
    };
    TimeSync::from_anchor(&read, &calib, 100e6)
}

/// Builds a random trace: sorted, non-overlapping executions plus power
/// logs at arbitrary ticks (inside and outside executions).
pub fn build_trace(starts: &[u64], ticks: &[u64]) -> RunTrace {
    let mut starts: Vec<u64> = starts.to_vec();
    starts.sort_unstable();
    starts.dedup();
    let mut trace = RunTrace::default();
    for (i, &s) in starts.iter().enumerate() {
        let gap = starts.get(i + 1).map(|&n| n - s).unwrap_or(20_000);
        let end = s + (gap / 2).max(1);
        trace.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: i as u32,
            cpu_start: CpuTime::from_nanos(s),
            cpu_end: CpuTime::from_nanos(end),
        });
    }
    for (i, &t) in ticks.iter().enumerate() {
        trace.power_logs.push(PowerLog {
            ticks: GpuTicks::from_raw(t),
            avg: ComponentPower::new(
                100.0 + i as f64,
                50.0 + i as f64,
                25.0 + i as f64,
                12.0 + i as f64,
            ),
        });
    }
    trace
}

// ---------------------------------------------------------------------
// Deterministic FGRVCKPT fixtures (also the committed golden files under
// tests/data/ and the fuzz seed corpus)
// ---------------------------------------------------------------------

/// The golden v1 campaign manifest (`tests/data/golden_manifest.fgrvckpt`).
pub fn golden_manifest() -> CampaignManifest {
    CampaignManifest {
        config_digest: 0x0123_4567_89ab_cdef,
        workers: 3,
        entries: vec![
            ManifestEntry {
                label: "CB-4K-GEMM".to_string(),
                seed: Some(0xdead_beef),
                status: EntryStatus::Done,
                shard: 0,
            },
            ManifestEntry {
                label: "MB-8K-GEMV".to_string(),
                seed: None,
                status: EntryStatus::Aborted,
                shard: 1,
            },
            ManifestEntry {
                label: "allreduce-64MB".to_string(),
                seed: Some(7),
                status: EntryStatus::Pending,
                shard: 2,
            },
        ],
    }
}

/// A deterministic 12-point profile, varied by `salt`.
pub fn golden_profile(label: &str, kind: ProfileKind, salt: u32) -> PowerProfile {
    let runs: Vec<u32> = (0..12).map(|i| (i + salt) % 5).collect();
    let vals: Vec<f64> = (0..12)
        .map(|i| f64::from(i) * 13.25 - f64::from(salt))
        .collect();
    let execs: Vec<u32> = (0..12).map(|i| (i * 7 + salt) % 9).collect();
    PowerProfile {
        label: label.to_string(),
        kind,
        store: build_store(&runs, &vals, &execs),
    }
}

/// The golden v1 entry artifact (`tests/data/golden_entry.fgrvckpt`).
pub fn golden_entry() -> EntryArtifact {
    EntryArtifact {
        index: 1,
        config_digest: 0x0123_4567_89ab_cdef,
        report: KernelPowerReport {
            label: "MB-8K-GEMV".to_string(),
            exec_time_ns: 123_456,
            guidance: GuidanceEntry {
                min_exec: SimDuration::from_micros(50),
                max_exec: Some(SimDuration::from_micros(200)),
                runs: 200,
                loi_interval: SimDuration::from_micros(10),
                margin_frac: 0.05,
            },
            margin_frac: 0.05,
            sse_index: 3,
            ssp_index: 11,
            executions_per_run: 14,
            runs_executed: 20,
            golden_runs: 17,
            throttle_detected: true,
            read_delay_ns: 750.25,
            estimated_drift_ppm: Some(-17.5),
            run_profile: golden_profile("MB-8K-GEMV", ProfileKind::Run, 0),
            sse_profile: golden_profile("MB-8K-GEMV", ProfileKind::Sse, 1),
            ssp_profile: golden_profile("MB-8K-GEMV", ProfileKind::Ssp, 2),
            sse_mean_total_w: None,
            ssp_mean_total_w: Some(812.0625),
            sse_vs_ssp_error: None,
        },
    }
}

/// The golden v1 stage checkpoint (`tests/data/golden_stage.fgrvckpt`).
pub fn golden_stage() -> StageCheckpoint {
    let starts: Vec<u64> = (0..6).map(|i| 10_000 + i * 40_000).collect();
    let ticks: Vec<u64> = (0..15).map(|i| 500 + i * 2_500).collect();
    let collected: Vec<CollectedRun> = (0..3)
        .map(|r| CollectedRun {
            trace: build_trace(&starts, &ticks),
            sync: identity_sync(),
            steady_median_ns: 40_000 + r * 10,
        })
        .collect();
    let medians: Vec<u64> = collected.iter().map(|c| c.steady_median_ns).collect();
    let binning = bin_durations(&medians, 0.05).expect("non-empty");
    StageCheckpoint {
        label: "stage-golden".to_string(),
        calibration: ReadDelayCalibration {
            median_rtt_ns: 1_500,
            assumed_sample_frac: 0.5,
        },
        timing: Some(TimingArtifact {
            sse_index: 2,
            exec_time_ns: 40_005,
            guidance: GuidanceEntry {
                min_exec: SimDuration::from_micros(25),
                max_exec: Some(SimDuration::from_micros(50)),
                runs: 400,
                loi_interval: SimDuration::from_micros(5),
                margin_frac: 0.05,
            },
            runs: 400,
            margin_frac: 0.05,
        }),
        ssp: Some(SspArtifact {
            ssp_index: 24,
            throttle_detected: false,
            executions_per_run: 27,
            loi_target: 8,
        }),
        collection: Some(RunCollection {
            collected,
            binning,
            profiles: StitchedProfiles {
                run: golden_profile("stage-golden", ProfileKind::Run, 3),
                sse: golden_profile("stage-golden", ProfileKind::Sse, 4),
                ssp: golden_profile("stage-golden", ProfileKind::Ssp, 5),
            },
        }),
    }
}

/// Asserts that every truncation of `bytes` decodes to the error `check`
/// accepts (and never panics or succeeds). `stride` subsamples long
/// encodings; pass 1 to try every cut.
pub fn assert_all_truncations_rejected<T, E: std::fmt::Debug>(
    bytes: &[u8],
    stride: usize,
    decode: impl Fn(&[u8]) -> Result<T, E>,
    check: impl Fn(&E) -> bool,
) {
    assert!(stride >= 1);
    for cut in (0..bytes.len()).step_by(stride) {
        match decode(&bytes[..cut]) {
            Err(e) if check(&e) => {}
            Err(e) => panic!("cut at {cut}/{}: unexpected error {e:?}", bytes.len()),
            Ok(_) => panic!("cut at {cut}/{}: decoded successfully", bytes.len()),
        }
    }
}
