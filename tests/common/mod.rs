//! Generators shared by the codec-hardening integration tests
//! (`profile_store.rs`, `checkpoint_codec.rs`, `checkpoint_resume.rs`):
//! random columnar stores, random traces, and the systematic
//! truncation/corruption drivers both the `FGRVPROF` and `FGRVCKPT`
//! adversarial suites run over.
//!
//! Each integration test is its own crate, so this module is compiled
//! per test binary; not every binary uses every helper.
#![allow(dead_code)] // per-binary compilation: see note above

use fingrav::core::profile::ProfilePoint;
use fingrav::core::store::ProfileStore;
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::kernel::KernelHandle;
use fingrav::sim::telemetry::PowerLog;
use fingrav::sim::trace::{RunTrace, TimedExecution, TimestampRead};
use fingrav::sim::{ComponentPower, CpuTime, GpuTicks};

/// Builds a store from three independently drawn columns (zipped to the
/// shortest), with validity derived from the exec column.
pub fn build_store(runs: &[u32], vals: &[f64], execs: &[u32]) -> ProfileStore {
    let n = runs.len().min(vals.len()).min(execs.len());
    let mut store = ProfileStore::with_capacity(n);
    for i in 0..n {
        let valid = !execs[i].is_multiple_of(3);
        store.push(ProfilePoint {
            run: runs[i],
            exec_pos: valid.then_some(execs[i]),
            toi_ns: valid.then_some(vals[i].abs()),
            run_time_ns: vals[i],
            power: ComponentPower::new(
                vals[i] * 0.50,
                vals[i] * 0.25,
                vals[i] * 0.15,
                vals[i] * 0.10,
            ),
        });
    }
    store
}

/// Identity-ish sync: tick k ↦ cpu 10·k ns (100 MHz anchored at zero).
pub fn identity_sync() -> TimeSync {
    let read = TimestampRead {
        cpu_before: CpuTime::from_nanos(0),
        cpu_after: CpuTime::from_nanos(0),
        ticks: GpuTicks::from_raw(0),
    };
    let calib = ReadDelayCalibration {
        median_rtt_ns: 0,
        assumed_sample_frac: 0.5,
    };
    TimeSync::from_anchor(&read, &calib, 100e6)
}

/// Builds a random trace: sorted, non-overlapping executions plus power
/// logs at arbitrary ticks (inside and outside executions).
pub fn build_trace(starts: &[u64], ticks: &[u64]) -> RunTrace {
    let mut starts: Vec<u64> = starts.to_vec();
    starts.sort_unstable();
    starts.dedup();
    let mut trace = RunTrace::default();
    for (i, &s) in starts.iter().enumerate() {
        let gap = starts.get(i + 1).map(|&n| n - s).unwrap_or(20_000);
        let end = s + (gap / 2).max(1);
        trace.executions.push(TimedExecution {
            kernel: KernelHandle::default(),
            index: i as u32,
            cpu_start: CpuTime::from_nanos(s),
            cpu_end: CpuTime::from_nanos(end),
        });
    }
    for (i, &t) in ticks.iter().enumerate() {
        trace.power_logs.push(PowerLog {
            ticks: GpuTicks::from_raw(t),
            avg: ComponentPower::new(
                100.0 + i as f64,
                50.0 + i as f64,
                25.0 + i as f64,
                12.0 + i as f64,
            ),
        });
    }
    trace
}

/// Asserts that every truncation of `bytes` decodes to the error `check`
/// accepts (and never panics or succeeds). `stride` subsamples long
/// encodings; pass 1 to try every cut.
pub fn assert_all_truncations_rejected<T, E: std::fmt::Debug>(
    bytes: &[u8],
    stride: usize,
    decode: impl Fn(&[u8]) -> Result<T, E>,
    check: impl Fn(&E) -> bool,
) {
    assert!(stride >= 1);
    for cut in (0..bytes.len()).step_by(stride) {
        match decode(&bytes[..cut]) {
            Err(e) if check(&e) => {}
            Err(e) => panic!("cut at {cut}/{}: unexpected error {e:?}", bytes.len()),
            Ok(_) => panic!("cut at {cut}/{}: decoded successfully", bytes.len()),
        }
    }
}
