//! Fuzz regression suite: replays the committed seed corpus under
//! `tests/data/fuzz/<target>/` through the `fgrv-fuzz` oracles on every
//! test run, pins the harness's thread-count determinism at integration
//! level, and keeps sentinel rejection tests for each target (the
//! campaign that produced the corpus — ≥1M inputs per target — ended
//! with zero findings, so there are no crash fixtures to promote; the
//! sentinels guarantee the oracles still *can* reject). See
//! `docs/FUZZING.md` for the corpus workflow.

use std::fs;
use std::path::{Path, PathBuf};

use fgrv_fuzz::exec::run_one;
use fgrv_fuzz::targets::{self, Target, TARGETS};
use fgrv_fuzz::{run, FuzzConfig, BATCH};
use fingrav::core::checkpoint::{CheckpointDir, CheckpointError};
use fingrav::core::store::ProfileStore;

mod common;
use common::{build_store, golden_entry, golden_manifest};

fn corpus_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/fuzz")
        .join(name)
}

fn corpus_entries(name: &str) -> Vec<Vec<u8>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir(name))
        .unwrap_or_else(|e| panic!("committed corpus dir for {name} missing: {e}"))
        .map(|e| e.expect("corpus dir entry reads").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| fs::read(p).expect("corpus file reads"))
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fingrav-fuzz-regression-{tag}-{}",
        std::process::id()
    ));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("stale scratch dir removes");
    }
    fs::create_dir_all(&dir).expect("scratch dir creates");
    dir
}

// ---------------------------------------------------------------------
// Committed corpus: every retained input stays oracle-clean
// ---------------------------------------------------------------------

/// Every `.bin` in the committed corpus replays through the full oracle
/// (differential decode, round trip, panic containment) with zero
/// findings — a decoder regression that breaks any retained input fails
/// here before the fuzzer ever runs.
#[test]
fn committed_corpus_replays_clean() {
    for info in TARGETS {
        let entries = corpus_entries(info.name);
        assert!(
            !entries.is_empty(),
            "{}: committed corpus is empty — regenerate with \
             `fgrv-fuzz run {} --corpus tests/data/fuzz/{}`",
            info.name,
            info.name,
            info.name
        );
        for (i, input) in entries.iter().enumerate() {
            let result = run_one(info.target, input);
            assert!(
                result.finding.is_none(),
                "{} corpus entry {i} ({} bytes): {:?}",
                info.name,
                input.len(),
                result.finding
            );
        }
    }
}

// ---------------------------------------------------------------------
// Sentinels: each target still rejects its own damaged golden seed
// ---------------------------------------------------------------------

/// Flipping the first byte (the format magic) of each target's first
/// structured seed must produce a typed rejection — recorded in the
/// error taxonomy — and never a panic or an oracle violation. This is
/// the standing guarantee that the oracles have teeth: a decoder change
/// that starts accepting arbitrary magic trips this before anything
/// else.
#[test]
fn each_target_rejects_its_mutated_golden_seed() {
    for info in TARGETS {
        let seed = targets::seeds(info.target)
            .into_iter()
            .find(|s| !s.is_empty())
            .unwrap_or_else(|| panic!("{}: no structured seed", info.name));
        let mut mutated = seed.clone();
        mutated[0] ^= 0xFF;
        let result = run_one(info.target, &mutated);
        assert!(
            result.finding.is_none(),
            "{}: mutated seed violated an oracle: {:?}",
            info.name,
            result.finding
        );
        assert!(
            !result.taxonomy.is_empty(),
            "{}: mutated magic was accepted (no typed error recorded)",
            info.name
        );
    }
}

/// Regression for a fuzzer-found false positive: a `FGRVPROF` store
/// whose float columns hold NaN is a *valid* input, and the owned/view
/// differential must compare it NaN-safely (`StoreDiff` bit-compares)
/// instead of through `PartialEq` (where NaN ≠ NaN reported a bogus
/// divergence on accepted inputs).
#[test]
fn nan_payloads_replay_without_divergence() {
    let store = build_store(
        &[0, 1, 2, 3],
        &[f64::NAN, 1.5, f64::NEG_INFINITY, -0.0],
        &[1, 2, 4, 5],
    );
    let bytes = store.to_bytes();
    assert!(
        ProfileStore::from_bytes(&bytes)
            .expect("NaN store decodes")
            .run_time_ns(0)
            .is_nan(),
        "fixture must actually carry a NaN payload"
    );
    let result = run_one(Target::Prof, &bytes);
    assert!(result.finding.is_none(), "{:?}", result.finding);
}

/// The `CheckpointDir`-mediated read path (what campaign resume uses)
/// agrees with the raw decoder: a persisted golden entry reads back
/// equal, and a damaged file surfaces the typed error — never a panic,
/// never a wrong artifact.
#[test]
fn checkpoint_dir_reads_reject_damaged_entries() {
    let root = scratch_dir("ckptdir");
    let dir = CheckpointDir::create(&root).expect("checkpoint dir creates");
    dir.write_manifest(&golden_manifest())
        .expect("manifest writes");

    let entry = golden_entry();
    let good_path = dir.write_entry(0, &entry).expect("entry writes");
    let read_back = dir.read_entry(&good_path).expect("entry reads back");
    assert_eq!(read_back.to_bytes(), entry.to_bytes());

    // Same bytes with a flipped version field, persisted through the
    // zero-copy path the coordinator uses for wire payloads.
    let mut damaged = entry.to_bytes();
    damaged[8] ^= 0x01;
    let bad_path = dir
        .write_entry_bytes(1, entry.index as usize, &damaged)
        .expect("damaged bytes persist");
    assert!(matches!(
        dir.read_entry(&bad_path),
        Err(CheckpointError::UnsupportedVersion(_))
    ));

    fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------
// Determinism: same seed + committed corpus ⇒ same schedule, any threads
// ---------------------------------------------------------------------

/// An iteration-budgeted campaign seeded from the committed corpus is a
/// pure function of `(target, seed, corpus)`: 1, 2, and 8 worker
/// threads produce the byte-identical mutation schedule and the same
/// final corpus digest. (Each thread count gets its own scratch copy of
/// the corpus so the committed tree is never written to.)
#[test]
fn fuzz_campaign_is_deterministic_across_thread_counts() {
    let committed = corpus_entries("prof");
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let scratch = scratch_dir(&format!("det-{threads}"));
        for input in &committed {
            fs::write(
                scratch.join(format!("{:016x}.bin", fgrv_fuzz::corpus::fnv1a(input))),
                input,
            )
            .expect("scratch corpus writes");
        }
        let report = run(&FuzzConfig {
            target: Target::Prof,
            seed: 42,
            threads,
            iters: Some(BATCH as u64),
            seconds: None,
            corpus_dir: Some(scratch.clone()),
        })
        .expect("campaign runs");
        assert!(
            report.findings.is_empty(),
            "threads={threads}: {:?}",
            report.findings
        );
        reports.push((threads, report));
        fs::remove_dir_all(&scratch).ok();
    }
    let (_, first) = &reports[0];
    for (threads, report) in &reports[1..] {
        assert_eq!(
            report.schedule_digest, first.schedule_digest,
            "mutation schedule drifted at {threads} threads"
        );
        assert_eq!(
            report.corpus_digest, first.corpus_digest,
            "final corpus drifted at {threads} threads"
        );
        assert_eq!(report.executed, first.executed);
    }
}
