//! Zero-copy `ProfileStoreView` guarantees: every accessor and shared
//! kernel agrees bit-for-bit with the owned `ProfileStore` on random
//! stores; the CSV render through the view is byte-identical to the
//! owned render; `extend_from_view` equals the copy-then-merge path;
//! mmapped files decode identically to in-memory buffers; and damaged
//! encodings (truncations, bit flips, stray bitmap bits, non-canonical
//! slots, trailing bytes) fail with the *same* typed error on the view
//! path as on the owned decoder — never a panic, never a wrong store.

use fingrav::core::mmap::MappedProfile;
use fingrav::core::profile::ProfileAxis;
use fingrav::core::report::{columns_to_csv, view_to_csv};
use fingrav::core::store::{ProfileStore, ProfileStoreView, StoreCodecError};
use proptest::prelude::*;

mod common;
use common::{assert_all_truncations_rejected, build_store};

/// Two codec results agree when both succeed with equal stores or both
/// fail with the same error (compared through `Debug`, which covers the
/// variant *and* its payload: block label, magic bytes, message).
fn assert_same_outcome(
    owned: Result<ProfileStore, StoreCodecError>,
    view: Result<ProfileStore, StoreCodecError>,
    what: &str,
) {
    match (owned, view) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{what}: owned and view decoded different stores"),
        (Err(a), Err(b)) => assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{what}: owned and view failed differently"
        ),
        (a, b) => panic!("{what}: owned {a:?} vs view {b:?} disagree on success"),
    }
}

// ---------------------------------------------------------------------
// Property: every view accessor / kernel ≡ the owned store
// ---------------------------------------------------------------------

proptest! {
    /// On a random store, the borrowed view returns exactly what the
    /// owned store returns for every accessor and every shared kernel.
    #[test]
    fn view_accessors_and_kernels_match_owned(
        runs in prop::collection::vec(0u32..500, 0..120),
        vals in prop::collection::vec(-1.0e7f64..1.0e7, 0..120),
        execs in prop::collection::vec(0u32..64, 0..120),
    ) {
        let store = build_store(&runs, &vals, &execs);
        let bytes = store.to_bytes();
        let view = ProfileStoreView::new(&bytes).expect("valid encoding");

        prop_assert_eq!(view.len(), store.len());
        prop_assert_eq!(view.is_empty(), store.is_empty());
        prop_assert_eq!(view.encoded_len(), bytes.len());

        for i in 0..store.len() {
            prop_assert_eq!(view.run(i), store.run(i));
            prop_assert_eq!(view.exec_pos(i), store.exec_pos(i));
            prop_assert_eq!(view.in_exec(i), store.in_exec(i));
            // NaN-safe: compare through bits, not PartialEq.
            prop_assert_eq!(
                view.toi_ns(i).map(f64::to_bits),
                store.toi_ns(i).map(f64::to_bits)
            );
            prop_assert_eq!(
                view.run_time_ns(i).to_bits(),
                store.run_time_ns(i).to_bits()
            );
            prop_assert_eq!(view.power(i), store.power(i));
            prop_assert_eq!(view.total_w(i).to_bits(), store.total_w(i).to_bits());
            prop_assert_eq!(view.point(i), store.point(i));
        }
        prop_assert_eq!(
            view.points().collect::<Vec<_>>(),
            (0..store.len()).map(|i| store.point(i)).collect::<Vec<_>>()
        );

        prop_assert_eq!(view.sum_power(), store.sum_power());
        prop_assert_eq!(view.mean_power(), store.mean_power());
        prop_assert_eq!(view.in_exec_count(), store.in_exec_count());
        for axis in [ProfileAxis::RunTime, ProfileAxis::Toi] {
            prop_assert_eq!(view.argsort_by_axis(axis), store.argsort_by_axis(axis));
            prop_assert_eq!(view.sorted_by_axis(axis), store.sorted_by_axis(axis));
        }
        let pred_view = view.indices_where(|p| p.in_exec() && p.run_time_ns() >= 0.0);
        let pred_owned = store.indices_where(|p| p.in_exec() && p.run_time_ns() >= 0.0);
        prop_assert_eq!(&pred_view, &pred_owned);
        prop_assert_eq!(view.indices_in_exec(), store.indices_in_exec());
        prop_assert_eq!(view.select(&pred_view), store.select(&pred_owned));

        prop_assert_eq!(view.to_store(), store.clone());
        prop_assert!(view.diff(&view).is_identical());
        prop_assert!(view.diff_store(&store).is_identical());
        prop_assert!(store.diff_view(&view).is_identical());
    }

    /// The CSV formatter renders a view byte-identically to the owned
    /// store it was decoded from, on both axes.
    #[test]
    fn view_csv_render_matches_owned(
        runs in prop::collection::vec(0u32..100, 0..60),
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 0..60),
        execs in prop::collection::vec(0u32..64, 0..60),
    ) {
        let store = build_store(&runs, &vals, &execs);
        let bytes = store.to_bytes();
        let view = ProfileStoreView::new(&bytes).expect("valid encoding");
        for axis in [ProfileAxis::RunTime, ProfileAxis::Toi] {
            prop_assert_eq!(view_to_csv(&view, axis), columns_to_csv(&store, axis));
        }
    }

    /// Streaming-merge primitive: appending a view to a non-empty store
    /// equals decode-then-`extend_from`, and the pre-reserved columns
    /// never over-allocate beyond one exact reservation.
    #[test]
    fn extend_from_view_equals_copy_then_merge(
        runs_a in prop::collection::vec(0u32..100, 0..50),
        vals_a in prop::collection::vec(-1.0e6f64..1.0e6, 0..50),
        execs_a in prop::collection::vec(0u32..64, 0..50),
        runs_b in prop::collection::vec(0u32..100, 0..50),
        vals_b in prop::collection::vec(-1.0e6f64..1.0e6, 0..50),
        execs_b in prop::collection::vec(0u32..64, 0..50),
    ) {
        let base = build_store(&runs_a, &vals_a, &execs_a);
        let tail = build_store(&runs_b, &vals_b, &execs_b);
        let tail_bytes = tail.to_bytes();
        let tail_view = ProfileStoreView::new(&tail_bytes).expect("valid encoding");

        let mut via_view = base.clone();
        via_view.extend_from_view(&tail_view);
        let mut via_copy = base.clone();
        via_copy.extend_from(&tail_view.to_store());
        prop_assert_eq!(&via_view, &via_copy);
        prop_assert_eq!(via_view.to_bytes(), via_copy.to_bytes());
    }

    /// Bit flips anywhere in the encoding: the view constructor and the
    /// owned decoder agree exactly — same success (equal stores) or the
    /// same typed error. Neither path ever panics.
    #[test]
    fn bit_flips_fail_identically_on_both_paths(
        runs in prop::collection::vec(0u32..100, 1..40),
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 1..40),
        execs in prop::collection::vec(0u32..64, 1..40),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let store = build_store(&runs, &vals, &execs);
        let mut bytes = store.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[pos] ^= 1 << bit;
        assert_same_outcome(
            ProfileStore::from_bytes(&bytes),
            ProfileStoreView::new(&bytes).map(|v| v.to_store()),
            &format!("bit {bit} of byte {pos} flipped"),
        );
    }
}

// ---------------------------------------------------------------------
// Damage suites: truncation, stray bits, non-canonical slots, trailers
// ---------------------------------------------------------------------

/// Every truncation of a valid encoding is `Truncated` on both paths,
/// with the *same* block label; never a panic, never a wrong store.
#[test]
fn every_truncation_rejected_identically() {
    let store = build_store(
        &[0, 1, 2, 3, 4, 5, 6, 7],
        &[1.0, -2.0, 3.5, 0.0, 9.25, -8.5, 4.0, 2.0],
        &[0, 1, 2, 3, 4, 5, 6, 7],
    );
    let bytes = store.to_bytes();
    assert_all_truncations_rejected(
        &bytes,
        1,
        |cut| ProfileStoreView::new(cut).map(|v| v.len()),
        |e| matches!(e, StoreCodecError::Truncated(_)),
    );
    for cut in 0..bytes.len() {
        assert_same_outcome(
            ProfileStore::from_bytes(&bytes[..cut]),
            ProfileStoreView::new(&bytes[..cut]).map(|v| v.to_store()),
            &format!("cut at {cut}"),
        );
    }
}

#[test]
fn stray_bitmap_tail_bit_is_corrupt() {
    let store = build_store(&[1, 2, 3], &[10.0, -20.0, 30.0], &[1, 2, 4]);
    let mut bytes = store.to_bytes();
    // 3 points -> one bitmap word; bits 3..64 must be zero. Set bit 7.
    let bitmap_word_start = bytes.len() - 8;
    bytes[bitmap_word_start] |= 1 << 7;
    for (what, outcome) in [
        ("owned", ProfileStore::from_bytes(&bytes).map(|_| ())),
        ("view", ProfileStoreView::new(&bytes).map(|_| ())),
    ] {
        match outcome {
            Err(StoreCodecError::Corrupt(msg)) => {
                assert!(msg.contains("bit"), "{what}: unhelpful message {msg:?}")
            }
            other => panic!("{what}: stray tail bit accepted: {other:?}"),
        }
    }
}

#[test]
fn non_canonical_invalid_slot_is_corrupt() {
    // Point 0 is out-of-execution (exec multiple of 3 in `build_store`),
    // so its exec_pos and toi_ns slots must be zero in canonical form.
    let store = build_store(&[1, 2], &[10.0, 20.0], &[3, 1]);
    assert!(!store.in_exec(0), "fixture: point 0 must be invalid");
    let clean = store.to_bytes();

    // exec_pos block starts after header (24) + run block (4·2).
    let mut dirty_exec = clean.clone();
    dirty_exec[24 + 8] = 7;
    // toi block starts after both u32 blocks.
    let mut dirty_toi = clean.clone();
    dirty_toi[24 + 16] = 1;

    for (what, bytes) in [("exec_pos", dirty_exec), ("toi_ns", dirty_toi)] {
        assert!(
            matches!(
                ProfileStoreView::new(&bytes),
                Err(StoreCodecError::Corrupt(_))
            ),
            "view accepted a non-canonical {what} slot"
        );
        assert_same_outcome(
            ProfileStore::from_bytes(&bytes),
            ProfileStoreView::new(&bytes).map(|v| v.to_store()),
            &format!("non-canonical {what}"),
        );
    }
}

#[test]
fn trailing_bytes_rejected_but_split_prefix_returns_them() {
    let store = build_store(&[1, 2, 3], &[10.0, -20.0, 30.0], &[1, 2, 4]);
    let mut bytes = store.to_bytes();
    let clean_len = bytes.len();
    bytes.extend_from_slice(b"JUNK");

    assert!(matches!(
        ProfileStoreView::new(&bytes),
        Err(StoreCodecError::Corrupt(msg)) if msg.contains("trailing")
    ));
    assert_same_outcome(
        ProfileStore::from_bytes(&bytes),
        ProfileStoreView::new(&bytes).map(|v| v.to_store()),
        "trailing bytes",
    );

    // The embedded-store entry point hands the remainder back instead.
    let (view, rest) = ProfileStoreView::split_prefix(&bytes).expect("prefix is valid");
    assert_eq!(view.encoded_len(), clean_len);
    assert_eq!(rest, b"JUNK");
    assert_eq!(view.to_store(), store);
}

/// A header claiming an implausible point count is rejected before any
/// column allocation could happen (typed error, instant return).
#[test]
fn implausible_length_rejected_without_allocation() {
    let store = build_store(&[1], &[10.0], &[1]);
    let mut bytes = store.to_bytes();
    bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    for outcome in [
        ProfileStore::from_bytes(&bytes).map(|_| ()),
        ProfileStoreView::new(&bytes).map(|_| ()),
    ] {
        match outcome {
            Err(StoreCodecError::Corrupt(msg)) => assert!(msg.contains("implausible")),
            other => panic!("implausible length accepted: {other:?}"),
        }
    }

    // A *plausible but huge* count against a tiny buffer is truncation,
    // and must also return without trying to materialise the columns.
    bytes[16..24].copy_from_slice(&(u64::from(u32::MAX)).to_le_bytes());
    assert!(matches!(
        ProfileStoreView::new(&bytes),
        Err(StoreCodecError::Truncated(_))
    ));
    assert!(matches!(
        ProfileStore::from_bytes(&bytes),
        Err(StoreCodecError::Truncated(_))
    ));
}

// ---------------------------------------------------------------------
// mmap path: a mapped file serves the identical view
// ---------------------------------------------------------------------

#[test]
fn mmapped_file_decodes_identically_to_buffer() {
    let store = build_store(
        &[0, 1, 2, 3, 4],
        &[1.5, -2.5, 3.5, -4.5, 5.5],
        &[1, 2, 3, 4, 5],
    );
    let bytes = store.to_bytes();
    let path = std::env::temp_dir().join(format!("fingrav-view-test-{}.fgrv", std::process::id()));
    std::fs::write(&path, &bytes).expect("scratch file writes");

    let mapped = MappedProfile::open(&path).expect("maps");
    assert_eq!(mapped.bytes(), &bytes[..]);
    let view = mapped.view().expect("mapped bytes decode");
    assert_eq!(view.to_store(), store);
    assert!(store.diff_view(&view).is_identical());

    // Damage on disk surfaces the same typed error through the map.
    let mut damaged = bytes.clone();
    damaged.truncate(damaged.len() - 3);
    std::fs::write(&path, &damaged).expect("scratch file rewrites");
    let remapped = MappedProfile::open(&path).expect("maps");
    assert!(matches!(
        remapped.view(),
        Err(StoreCodecError::Truncated("validity bitmap"))
    ));

    drop(mapped);
    drop(remapped);
    std::fs::remove_file(&path).ok();
}
