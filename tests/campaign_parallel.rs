//! Campaign determinism under sharding: a parallel `CampaignExecutor` run
//! must serialize to a byte-identical `CampaignReport` as the serial path
//! with the same seeds, and the report must survive a serde round-trip.
//!
//! Streaming-session coverage rides along: bounded-channel backpressure
//! must never deadlock the engine, a mid-script abort must yield a valid
//! partial trace, per-slot event streams must be bit-identical across
//! worker counts, and campaign cancellation must stop pending entries and
//! abort in-flight sessions under both error policies.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use fingrav::core::backend::{PowerBackend, SimulationFactory};
use fingrav::core::campaign::{Campaign, CampaignReport};
use fingrav::core::error::MethodologyError;
use fingrav::core::executor::{CampaignExecutor, CampaignObserver, CancellationToken, ErrorPolicy};
use fingrav::core::observe::ProfilingEvent;
use fingrav::core::runner::RunnerConfig;
use fingrav::sim::session::{ChannelSink, TelemetryEvent};
use fingrav::sim::{Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

/// Eight suite kernels (the six GEMM/GEMVs plus two collectives): enough
/// shape diversity that warm-up counts, SSP indices, and LOI yields all
/// differ across slots.
fn suite_campaign() -> Campaign {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(8));
    campaign.add_all(suite::gemm_suite(&machine).into_iter().map(|k| k.desc));
    let collectives = suite::collective_suite(&machine, Default::default());
    campaign.add_all(collectives.into_iter().take(2).map(|k| k.desc));
    assert!(campaign.len() >= 6, "the determinism claim needs breadth");
    campaign
}

#[test]
fn parallel_campaign_serializes_byte_identical_to_serial() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 4242);

    let serial = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("serial campaign profiles");
    let parallel = CampaignExecutor::new(4)
        .run(&campaign, &factory)
        .expect("parallel campaign profiles");

    // Structural equality first (clearer failure on a mismatch)...
    assert_eq!(serial, parallel);
    // ...then the headline claim: the serialized artefacts are
    // byte-identical, so downstream pipelines (report archival, diffing,
    // caching) cannot tell how the campaign was executed.
    let serial_json = serde_json::to_string(&serial).expect("serializes");
    let parallel_json = serde_json::to_string(&parallel).expect("serializes");
    assert_eq!(serial_json, parallel_json);
    assert!(
        serial_json.len() > 1_000,
        "sanity: {} bytes is too small for 8 kernel reports",
        serial_json.len()
    );

    // And the artefact round-trips losslessly.
    let restored: CampaignReport = serde_json::from_str(&serial_json).expect("deserializes");
    assert_eq!(restored, serial);
}

#[test]
fn legacy_closure_path_matches_the_executor() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 4242);
    let via_executor = CampaignExecutor::new(3)
        .run(&campaign, &factory)
        .expect("profiles");
    let via_closure = campaign
        .run(|i| Simulation::new(SimConfig::default(), factory.slot_seed(i)).expect("valid"))
        .expect("profiles");
    assert_eq!(via_executor, via_closure);
}

#[test]
fn worker_count_never_changes_results() {
    // Degenerate and over-provisioned worker counts included: more workers
    // than kernels must not reorder, drop, or reseed anything.
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add_all(suite::gemm_suite(&machine).into_iter().map(|k| k.desc));
    let factory = SimulationFactory::new(SimConfig::default(), 77);

    let reference = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("profiles");
    for workers in [2, 5, 32] {
        let sharded = CampaignExecutor::new(workers)
            .run(&campaign, &factory)
            .expect("profiles");
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "{workers} workers diverged"
        );
    }
}

/// Order-sensitive per-slot digest of every profiling event: identical
/// streams fold to identical `(digest, count)` pairs, and any reordering,
/// insertion, or mutation changes the digest.
struct Recorder {
    slots: Vec<Mutex<(u64, usize)>>,
}

impl Recorder {
    fn new(entries: usize) -> Self {
        Recorder {
            slots: (0..entries).map(|_| Mutex::new((0, 0))).collect(),
        }
    }

    fn digests(&self) -> Vec<(u64, usize)> {
        self.slots
            .iter()
            .map(|s| *s.lock().expect("recorder slot"))
            .collect()
    }
}

impl CampaignObserver for Recorder {
    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        let mut slot = self.slots[index].lock().expect("recorder slot");
        let mut h = DefaultHasher::new();
        slot.0.hash(&mut h);
        format!("{event:?}").hash(&mut h);
        *slot = (h.finish(), slot.1 + 1);
    }
}

#[test]
fn bounded_channel_backpressure_never_deadlocks_the_engine() {
    let machine = SimConfig::default().machine.clone();
    let desc = suite::cb_gemm(&machine, 2048);
    let script_for = |sim: &mut Simulation| {
        let k = PowerBackend::register_kernel(sim, &desc).expect("register");
        Script::builder()
            .begin_run()
            .start_power_logger()
            .read_gpu_timestamp()
            .launch_timed(k, 12)
            .sleep(SimDuration::from_millis(1))
            .read_gpu_timestamp()
            .stop_power_logger()
            .build()
    };

    // Reference: the plain batch call on an identically-seeded device.
    let mut reference_sim = Simulation::new(SimConfig::default(), 4711).expect("valid");
    let script = script_for(&mut reference_sim);
    let reference = PowerBackend::run_script(&mut reference_sim, &script).expect("runs");

    // Streamed: a capacity-1 channel with a deliberately slow consumer, so
    // the engine spends most of the run blocked on backpressure.
    let mut sim = Simulation::new(SimConfig::default(), 4711).expect("valid");
    let script = script_for(&mut sim);
    let (sink, rx) = ChannelSink::bounded(1);
    let consumer = std::thread::spawn(move || {
        let mut events = Vec::new();
        for event in rx.iter() {
            if events.len() % 8 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            events.push(event);
        }
        events
    });
    let trace = sim.begin_script(&script, sink).run().expect("session runs");
    let events = consumer.join().expect("consumer finishes: no deadlock");

    assert_eq!(trace, reference, "backpressure must not change the trace");
    assert_eq!(
        events.first(),
        Some(&TelemetryEvent::ScriptStarted { ops: 7 })
    );
    assert_eq!(
        events.last(),
        Some(&TelemetryEvent::ScriptDone { aborted: false })
    );
    // The sink-driven stream carries the full trace, event for event.
    let streamed_execs: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::LaunchCompleted { execution } => Some(*execution),
            _ => None,
        })
        .collect();
    assert_eq!(streamed_execs, trace.executions);
    let streamed_logs: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::PowerLogEmitted { coarse: false, log } => Some(*log),
            _ => None,
        })
        .collect();
    assert_eq!(streamed_logs, trace.power_logs);
}

#[test]
fn mid_script_abort_yields_a_valid_partial_trace() {
    let machine = SimConfig::default().machine.clone();
    let desc = suite::cb_gemm(&machine, 4096);
    let mut sim = Simulation::new(SimConfig::default(), 515).expect("valid");
    let k = PowerBackend::register_kernel(&mut sim, &desc).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .launch_timed(k, 40)
        .sleep(SimDuration::from_millis(1))
        .stop_power_logger()
        .build();

    let session = sim.begin_script(&script, |_: TelemetryEvent| {});
    let abort = session.abort_handle();
    abort.abort(); // fire before the first op: deterministic cut point
    let trace = session.run().expect("aborted sessions still return Ok");
    assert!(trace.aborted);
    assert!(trace.executions.is_empty());

    // Fire mid-launch from the sink itself: the partial trace keeps every
    // completed execution, in order, and the session stays usable.
    let mut sim = Simulation::new(SimConfig::default(), 515).expect("valid");
    let k = PowerBackend::register_kernel(&mut sim, &desc).expect("register");
    let handle = fingrav::sim::session::AbortHandle::new();
    let stopper = handle.clone();
    let mut launches = 0u32;
    let sink = move |event: TelemetryEvent| {
        if matches!(event, TelemetryEvent::LaunchCompleted { .. }) {
            launches += 1;
            if launches == 6 {
                stopper.abort();
            }
        }
    };
    let session = sim.begin_script(&script, sink).with_abort(handle);
    let trace = session.run().expect("aborted sessions still return Ok");
    assert!(trace.aborted, "trace must be tagged");
    assert!(
        !trace.executions.is_empty() && trace.executions.len() < 40,
        "partial: got {}",
        trace.executions.len()
    );
    for (i, e) in trace.executions.iter().enumerate() {
        assert_eq!(e.index, i as u32, "executions stay dense and ordered");
        assert!(e.duration_ns() > 0);
    }
    for w in trace.power_logs.windows(2) {
        assert!(
            w[1].ticks.as_raw() > w[0].ticks.as_raw(),
            "logs tick-ordered"
        );
    }
    // The device is quiescent after the cooperative stop: profiling on the
    // same session still works.
    let follow_up = Script::builder().begin_run().launch_timed(k, 2).build();
    let t2 = PowerBackend::run_script(&mut sim, &follow_up).expect("runs");
    assert!(!t2.aborted);
    assert_eq!(t2.executions.len(), 2);
}

#[test]
fn per_slot_event_streams_are_identical_across_worker_counts() {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add_all(
        suite::gemm_suite(&machine)
            .into_iter()
            .take(4)
            .map(|k| k.desc),
    );
    let factory = SimulationFactory::new(SimConfig::default(), 2024);

    // The unobserved plain run is the report reference.
    let plain = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("profiles");

    let mut streams: Vec<Vec<(u64, usize)>> = Vec::new();
    for workers in [1usize, 2, 8] {
        let recorder = Recorder::new(campaign.len());
        let outcome = CampaignExecutor::new(workers).execute_observed(
            &campaign,
            &factory,
            &recorder,
            &CancellationToken::new(),
        );
        let report = outcome.into_report().expect("profiles");
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&plain).unwrap(),
            "a sink-driven run must match run_script bit for bit ({workers} workers)"
        );
        let digests = recorder.digests();
        for (slot, &(_, count)) in digests.iter().enumerate() {
            assert!(
                count > 100,
                "slot {slot} must stream real events, got {count}"
            );
        }
        streams.push(digests);
    }
    assert_eq!(streams[0], streams[1], "2 workers diverged from 1");
    assert_eq!(streams[0], streams[2], "8 workers diverged from 1");
}

/// Cancels after the first finished entry; counts lifecycle calls.
struct CancelAfterFirst {
    cancel: CancellationToken,
    finished: Mutex<Vec<usize>>,
    skipped: Mutex<Vec<usize>>,
}

impl CampaignObserver for CancelAfterFirst {
    fn entry_finished(&self, index: usize, _report: &fingrav::core::runner::KernelPowerReport) {
        self.finished.lock().unwrap().push(index);
        self.cancel.abort();
    }
    fn entry_skipped(&self, index: usize) {
        self.skipped.lock().unwrap().push(index);
    }
}

#[test]
fn cancellation_token_stops_pending_entries_under_both_policies() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 31337);

    for policy in [ErrorPolicy::FailFast, ErrorPolicy::CollectAll] {
        // Pre-fired token: nothing starts, everything is skipped.
        let cancel = CancellationToken::new();
        cancel.abort();
        let outcome = CampaignExecutor::new(3)
            .error_policy(policy)
            .execute_observed(
                &campaign,
                &factory,
                &fingrav::core::executor::NoopCampaignObserver,
                &cancel,
            );
        assert!(outcome.reports.iter().all(Option::is_none));
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.skipped, (0..campaign.len()).collect::<Vec<_>>());

        // Token fired after the first entry finishes (serial executor for
        // a deterministic cut): exactly one report, the rest skipped.
        let observer = CancelAfterFirst {
            cancel: CancellationToken::new(),
            finished: Mutex::new(Vec::new()),
            skipped: Mutex::new(Vec::new()),
        };
        let outcome = CampaignExecutor::serial()
            .error_policy(policy)
            .execute_observed(&campaign, &factory, &observer, &observer.cancel);
        assert_eq!(outcome.reports.iter().filter(|r| r.is_some()).count(), 1);
        assert_eq!(*observer.finished.lock().unwrap(), vec![0]);
        assert_eq!(outcome.skipped, (1..campaign.len()).collect::<Vec<_>>());
        assert_eq!(*observer.skipped.lock().unwrap(), outcome.skipped);
    }
}

/// Cancels the campaign from inside slot 0's event stream, so the cut
/// lands mid-script and the in-flight session must abort.
struct CancelOnFirstLog {
    cancel: CancellationToken,
}

impl CampaignObserver for CancelOnFirstLog {
    fn entry_event(&self, index: usize, event: &ProfilingEvent) {
        if index == 0
            && matches!(
                event,
                ProfilingEvent::Device(TelemetryEvent::PowerLogEmitted { .. })
            )
        {
            self.cancel.abort();
        }
    }
}

#[test]
fn cancellation_aborts_the_in_flight_session() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 606);
    let observer = CancelOnFirstLog {
        cancel: CancellationToken::new(),
    };
    let outcome = CampaignExecutor::serial()
        .error_policy(ErrorPolicy::CollectAll)
        .execute_observed(&campaign, &factory, &observer, &observer.cancel);
    // Slot 0 was cut mid-measurement: it surfaces as Aborted, not as a
    // report; everything after it never starts.
    assert!(outcome.reports.iter().all(Option::is_none));
    assert_eq!(outcome.errors.len(), 1);
    assert_eq!(outcome.errors[0].0, 0);
    assert!(matches!(outcome.errors[0].1, MethodologyError::Aborted));
    assert_eq!(outcome.skipped, (1..campaign.len()).collect::<Vec<_>>());
}

#[test]
fn collect_all_reports_partial_results_deterministically() {
    // An invalid kernel (zero workgroups) fails registration on its slot;
    // collect-all must still measure every other slot identically to a
    // fully healthy campaign.
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    let kernels: Vec<_> = suite::gemm_suite(&machine)
        .into_iter()
        .take(4)
        .map(|k| k.desc)
        .collect();
    campaign.add_all(kernels.clone());
    let mut broken = kernels[1].clone();
    broken.workgroups = 0;
    campaign.add(broken);

    let factory = SimulationFactory::new(SimConfig::default(), 909);
    let outcome = CampaignExecutor::new(3)
        .error_policy(ErrorPolicy::CollectAll)
        .execute(&campaign, &factory);
    assert!(!outcome.is_complete());
    assert_eq!(outcome.errors.len(), 1);
    assert_eq!(outcome.errors[0].0, 4, "the broken slot is the fifth");
    assert_eq!(
        outcome.reports.iter().filter(|r| r.is_some()).count(),
        4,
        "healthy slots all measured"
    );

    // The healthy slots match a campaign that never contained the broken
    // kernel (isolation: a failing sibling cannot perturb measurements).
    let mut healthy = Campaign::new(RunnerConfig::quick(6));
    healthy.add_all(kernels);
    let healthy_report = CampaignExecutor::new(3)
        .run(&healthy, &factory)
        .expect("profiles");
    for (slot, report) in healthy_report.reports.iter().enumerate() {
        assert_eq!(
            serde_json::to_string(outcome.reports[slot].as_ref().unwrap()).unwrap(),
            serde_json::to_string(report).unwrap(),
        );
    }
}
