//! Campaign determinism under sharding: a parallel `CampaignExecutor` run
//! must serialize to a byte-identical `CampaignReport` as the serial path
//! with the same seeds, and the report must survive a serde round-trip.

use fingrav::core::backend::SimulationFactory;
use fingrav::core::campaign::{Campaign, CampaignReport};
use fingrav::core::executor::{CampaignExecutor, ErrorPolicy};
use fingrav::core::runner::RunnerConfig;
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;

/// Eight suite kernels (the six GEMM/GEMVs plus two collectives): enough
/// shape diversity that warm-up counts, SSP indices, and LOI yields all
/// differ across slots.
fn suite_campaign() -> Campaign {
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(8));
    campaign.add_all(suite::gemm_suite(&machine).into_iter().map(|k| k.desc));
    let collectives = suite::collective_suite(&machine, Default::default());
    campaign.add_all(collectives.into_iter().take(2).map(|k| k.desc));
    assert!(campaign.len() >= 6, "the determinism claim needs breadth");
    campaign
}

#[test]
fn parallel_campaign_serializes_byte_identical_to_serial() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 4242);

    let serial = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("serial campaign profiles");
    let parallel = CampaignExecutor::new(4)
        .run(&campaign, &factory)
        .expect("parallel campaign profiles");

    // Structural equality first (clearer failure on a mismatch)...
    assert_eq!(serial, parallel);
    // ...then the headline claim: the serialized artefacts are
    // byte-identical, so downstream pipelines (report archival, diffing,
    // caching) cannot tell how the campaign was executed.
    let serial_json = serde_json::to_string(&serial).expect("serializes");
    let parallel_json = serde_json::to_string(&parallel).expect("serializes");
    assert_eq!(serial_json, parallel_json);
    assert!(
        serial_json.len() > 1_000,
        "sanity: {} bytes is too small for 8 kernel reports",
        serial_json.len()
    );

    // And the artefact round-trips losslessly.
    let restored: CampaignReport = serde_json::from_str(&serial_json).expect("deserializes");
    assert_eq!(restored, serial);
}

#[test]
fn legacy_closure_path_matches_the_executor() {
    let campaign = suite_campaign();
    let factory = SimulationFactory::new(SimConfig::default(), 4242);
    let via_executor = CampaignExecutor::new(3)
        .run(&campaign, &factory)
        .expect("profiles");
    let via_closure = campaign
        .run(|i| Simulation::new(SimConfig::default(), factory.slot_seed(i)).expect("valid"))
        .expect("profiles");
    assert_eq!(via_executor, via_closure);
}

#[test]
fn worker_count_never_changes_results() {
    // Degenerate and over-provisioned worker counts included: more workers
    // than kernels must not reorder, drop, or reseed anything.
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    campaign.add_all(suite::gemm_suite(&machine).into_iter().map(|k| k.desc));
    let factory = SimulationFactory::new(SimConfig::default(), 77);

    let reference = CampaignExecutor::serial()
        .run(&campaign, &factory)
        .expect("profiles");
    for workers in [2, 5, 32] {
        let sharded = CampaignExecutor::new(workers)
            .run(&campaign, &factory)
            .expect("profiles");
        assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "{workers} workers diverged"
        );
    }
}

#[test]
fn collect_all_reports_partial_results_deterministically() {
    // An invalid kernel (zero workgroups) fails registration on its slot;
    // collect-all must still measure every other slot identically to a
    // fully healthy campaign.
    let machine = SimConfig::default().machine.clone();
    let mut campaign = Campaign::new(RunnerConfig::quick(6));
    let kernels: Vec<_> = suite::gemm_suite(&machine)
        .into_iter()
        .take(4)
        .map(|k| k.desc)
        .collect();
    campaign.add_all(kernels.clone());
    let mut broken = kernels[1].clone();
    broken.workgroups = 0;
    campaign.add(broken);

    let factory = SimulationFactory::new(SimConfig::default(), 909);
    let outcome = CampaignExecutor::new(3)
        .error_policy(ErrorPolicy::CollectAll)
        .execute(&campaign, &factory);
    assert!(!outcome.is_complete());
    assert_eq!(outcome.errors.len(), 1);
    assert_eq!(outcome.errors[0].0, 4, "the broken slot is the fifth");
    assert_eq!(
        outcome.reports.iter().filter(|r| r.is_some()).count(),
        4,
        "healthy slots all measured"
    );

    // The healthy slots match a campaign that never contained the broken
    // kernel (isolation: a failing sibling cannot perturb measurements).
    let mut healthy = Campaign::new(RunnerConfig::quick(6));
    healthy.add_all(kernels);
    let healthy_report = CampaignExecutor::new(3)
        .run(&healthy, &factory)
        .expect("profiles");
    for (slot, report) in healthy_report.reports.iter().enumerate() {
        assert_eq!(
            serde_json::to_string(outcome.reports[slot].as_ref().unwrap()).unwrap(),
            serde_json::to_string(report).unwrap(),
        );
    }
}
