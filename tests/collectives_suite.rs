//! Collective-kernel integration: classification, component ordering, and
//! the Fig. 10 relationships between communication and computation.

use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::fabric::{CollectiveKind, Fabric};
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite::{self, SuiteClass};
use fingrav::workloads::CommBoundedness;

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

fn ssp_power(
    seed: u64,
    desc: &fingrav::sim::KernelDesc,
    runs: u32,
) -> fingrav::sim::ComponentPower {
    let mut gpu = Simulation::new(SimConfig::default(), seed).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(runs));
    runner
        .profile(desc)
        .expect("profiles")
        .ssp_profile
        .mean_power()
        .expect("SSP LOIs present")
}

#[test]
fn suite_classifies_paper_sizes() {
    let machine = SimConfig::default().machine.clone();
    let suite = suite::collective_suite(&machine, Fabric::default());
    for sk in &suite {
        let expect_lb = sk.label.ends_with("KB");
        match sk.class {
            SuiteClass::Collective(b) => {
                let want = if expect_lb {
                    CommBoundedness::LatencyBound
                } else {
                    CommBoundedness::BandwidthBound
                };
                assert_eq!(b, want, "{} misclassified", sk.label);
            }
            _ => panic!("collective suite produced a non-collective"),
        }
    }
}

#[test]
fn bandwidth_bound_collectives_sit_between_lb_and_gemm() {
    // The Fig. 10 total-power ordering: LB comm < BB comm < CB-8K-GEMM.
    let machine = SimConfig::default().machine.clone();
    let rccl = fingrav::workloads::Rccl::new(machine.clone(), Fabric::default());

    let lb = ssp_power(301, &rccl.all_gather(64 * KIB), 40).total();
    let bb = ssp_power(302, &rccl.all_gather(512 * MIB), 25).total();
    let gemm = ssp_power(303, &suite::cb_gemm(&machine, 8192), 25).total();

    assert!(
        lb + 50.0 < bb,
        "LB total {lb:.0} W should sit clearly below BB {bb:.0} W"
    );
    assert!(
        bb + 100.0 < gemm,
        "BB total {bb:.0} W should sit clearly below CB-8K-GEMM {gemm:.0} W"
    );
}

#[test]
fn bb_collectives_stress_iod_hbm_not_xcd() {
    let machine = SimConfig::default().machine.clone();
    let rccl = fingrav::workloads::Rccl::new(machine.clone(), Fabric::default());

    let bb = ssp_power(304, &rccl.all_reduce(512 * MIB), 25);
    let gemm = ssp_power(305, &suite::cb_gemm(&machine, 8192), 25);

    assert!(
        bb.xcd < 0.5 * gemm.xcd,
        "BB comm XCD {:.0} W must be far below GEMM XCD {:.0} W",
        bb.xcd,
        gemm.xcd
    );
    assert!(
        bb.iod > 0.9 * gemm.iod,
        "BB comm IOD {:.0} W should rival the GEMM's {:.0} W",
        bb.iod,
        gemm.iod
    );
}

#[test]
fn allreduce_slower_and_hotter_than_allgather() {
    let fabric = Fabric::default();
    let ag = fabric.collective_cost(CollectiveKind::AllGather, 512 * MIB);
    let ar = fabric.collective_cost(CollectiveKind::AllReduce, 512 * MIB);
    assert!(ar.time > ag.time);

    let machine = SimConfig::default().machine.clone();
    let rccl = fingrav::workloads::Rccl::new(machine, fabric);
    let ag_k = rccl.all_gather(512 * MIB);
    let ar_k = rccl.all_reduce(512 * MIB);
    assert!(
        ar_k.activity.xcd > ag_k.activity.xcd,
        "reduction math costs XCD"
    );
}

#[test]
fn collective_kernels_profile_at_both_extremes() {
    // The same methodology must handle a ~15 us LB kernel and a ~5 ms BB
    // kernel without special-casing.
    let machine = SimConfig::default().machine.clone();
    let rccl = fingrav::workloads::Rccl::new(machine, Fabric::default());

    let lb = rccl.all_reduce(64 * KIB);
    let mut gpu = Simulation::new(SimConfig::default(), 306).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(40));
    let lb_report = runner.profile(&lb).expect("LB profile");
    assert!(
        lb_report.ssp_index > 10,
        "tiny kernel needs many executions"
    );

    let bb = rccl.all_reduce(1024 * MIB);
    let mut gpu = Simulation::new(SimConfig::default(), 307).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(15));
    let bb_report = runner.profile(&bb).expect("BB profile");
    assert!(
        bb_report.ssp_index <= 8,
        "multi-ms kernel reaches SSP within a few executions, got {}",
        bb_report.ssp_index
    );
}
