//! `FGRVCKPT` codec guarantees: lossless bit-exact round trips for the
//! manifest, entry-artifact, and stage-state sections (including the
//! stage artifacts `TimingArtifact` / `SspArtifact` / `RunCollection`),
//! systematic rejection of every truncation and of bit-flipped
//! magic/version/length fields with a specific typed error — never a
//! panic or an unbounded allocation — and a committed golden fixture that
//! fails loudly if a format change breaks v1 compatibility.

use fingrav::core::binning::bin_durations;
use fingrav::core::campaign::Campaign;
use fingrav::core::checkpoint::{
    CampaignManifest, CheckpointError, EntryArtifact, EntryStatus, ManifestEntry, StageCheckpoint,
    CKPT_VERSION,
};
use fingrav::core::guidance::GuidanceEntry;
use fingrav::core::profile::{PowerProfile, ProfileKind};
use fingrav::core::runner::{CollectedRun, RunnerConfig};
use fingrav::core::stages::{RunCollection, SspArtifact, StitchedProfiles, TimingArtifact};
use fingrav::core::sync::ReadDelayCalibration;
use fingrav::sim::{SimConfig, SimDuration};
use fingrav::workloads::suite;
use proptest::prelude::*;

mod common;
use common::{
    assert_all_truncations_rejected, build_store, build_trace, golden_entry, golden_manifest,
    golden_stage, identity_sync,
};

// ---------------------------------------------------------------------
// Golden fixture: committed v1 bytes must keep decoding forever
// ---------------------------------------------------------------------

/// Decodes the committed `FGRVCKPT` v1 fixtures. A format change that
/// breaks v1 compatibility fails here loudly (decode error or value
/// drift) instead of silently re-encoding; a deliberate break must bump
/// [`CKPT_VERSION`] and regenerate via
/// `cargo test --test checkpoint_codec -- --ignored`.
#[test]
fn golden_checkpoint_fixtures_decode() {
    assert_eq!(
        CKPT_VERSION, 1,
        "bumping the version invalidates the fixtures"
    );

    let manifest_bytes = include_bytes!("data/golden_manifest.fgrvckpt");
    let manifest = CampaignManifest::from_bytes(manifest_bytes).expect("v1 manifest decodes");
    assert_eq!(manifest, golden_manifest());
    assert_eq!(
        golden_manifest().to_bytes(),
        manifest_bytes,
        "manifest encoding drifted from the committed v1 bytes"
    );

    let entry_bytes = include_bytes!("data/golden_entry.fgrvckpt");
    let entry = EntryArtifact::from_bytes(entry_bytes).expect("v1 entry decodes");
    assert_eq!(entry, golden_entry());
    assert_eq!(
        golden_entry().to_bytes(),
        entry_bytes,
        "entry encoding drifted from the committed v1 bytes"
    );

    let stage_bytes = include_bytes!("data/golden_stage.fgrvckpt");
    let stage = StageCheckpoint::from_bytes(stage_bytes).expect("v1 stage state decodes");
    assert_eq!(stage, golden_stage());
    assert_eq!(
        golden_stage().to_bytes(),
        stage_bytes,
        "stage-state encoding drifted from the committed v1 bytes"
    );
}

/// Regenerates the golden fixtures (run explicitly with `--ignored` after
/// a deliberate, version-bumped format change).
#[test]
#[ignore = "rewrites the committed golden fixtures"]
fn regenerate_golden_checkpoint_fixtures() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    std::fs::write(
        dir.join("golden_manifest.fgrvckpt"),
        golden_manifest().to_bytes(),
    )
    .unwrap();
    std::fs::write(dir.join("golden_entry.fgrvckpt"), golden_entry().to_bytes()).unwrap();
    std::fs::write(dir.join("golden_stage.fgrvckpt"), golden_stage().to_bytes()).unwrap();
}

// ---------------------------------------------------------------------
// Systematic corruption: every truncation, every structural bit flip
// ---------------------------------------------------------------------

#[test]
fn every_truncation_is_rejected_with_a_typed_error() {
    // Every cut of every section kind: always `Truncated`, never a panic,
    // a success, or a misclassified error.
    assert_all_truncations_rejected(
        &golden_manifest().to_bytes(),
        1,
        CampaignManifest::from_bytes,
        |e| matches!(e, CheckpointError::Truncated(_)),
    );
    assert_all_truncations_rejected(
        &golden_entry().to_bytes(),
        1,
        EntryArtifact::from_bytes,
        |e| matches!(e, CheckpointError::Truncated(_)),
    );
    assert_all_truncations_rejected(
        &golden_stage().to_bytes(),
        1,
        StageCheckpoint::from_bytes,
        |e| matches!(e, CheckpointError::Truncated(_)),
    );
}

#[test]
fn flipped_magic_version_and_section_fields_are_typed() {
    let good = golden_entry().to_bytes();

    // Every single-bit flip inside the magic is BadMagic.
    for byte in 0..8 {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                matches!(
                    EntryArtifact::from_bytes(&bad),
                    Err(CheckpointError::BadMagic(_))
                ),
                "magic byte {byte} bit {bit}"
            );
        }
    }
    // Every single-bit flip inside the version is UnsupportedVersion.
    for byte in 8..12 {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                matches!(
                    EntryArtifact::from_bytes(&bad),
                    Err(CheckpointError::UnsupportedVersion(_))
                ),
                "version byte {byte} bit {bit}"
            );
        }
    }
    // Every single-bit flip inside the section tag is Corrupt.
    for byte in 12..16 {
        for bit in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                matches!(
                    EntryArtifact::from_bytes(&bad),
                    Err(CheckpointError::Corrupt(_))
                ),
                "section byte {byte} bit {bit}"
            );
        }
    }
    // Reading a valid file as the wrong section kind is Corrupt, not a
    // misdecode.
    assert!(matches!(
        CampaignManifest::from_bytes(&good),
        Err(CheckpointError::Corrupt(_))
    ));
}

#[test]
fn absurd_length_fields_never_over_allocate() {
    // The manifest's entry-count u64 lives at offset 28 (16-byte header +
    // digest + workers). An absurd value must be rejected as Corrupt
    // before any allocation is sized from it; a large-but-plausible value
    // must fail as Truncated after at most one bounded chunk.
    let good = golden_manifest().to_bytes();
    let mut absurd = good.clone();
    absurd[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        CampaignManifest::from_bytes(&absurd),
        Err(CheckpointError::Corrupt(_))
    ));
    let mut big = good.clone();
    big[28..36].copy_from_slice(&(3_000_000_000u64).to_le_bytes());
    assert!(matches!(
        CampaignManifest::from_bytes(&big),
        Err(CheckpointError::Truncated(_))
    ));

    // Same for a string length inside the first manifest entry (right
    // after the sequence count).
    let mut long_label = good.clone();
    long_label[36..44].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        CampaignManifest::from_bytes(&long_label),
        Err(CheckpointError::Corrupt(_))
    ));

    // Trailing garbage after a well-formed payload is Corrupt.
    let mut trailing = good;
    trailing.extend_from_slice(&[0, 1, 2]);
    assert!(matches!(
        CampaignManifest::from_bytes(&trailing),
        Err(CheckpointError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------
// Properties: round trips and no-panic under arbitrary damage
// ---------------------------------------------------------------------

proptest! {
    /// Manifests round-trip bit-exactly through the binary format.
    #[test]
    fn manifest_round_trips(
        digest in 0u64..u64::MAX,
        workers in 1u32..64,
        label_lens in prop::collection::vec(0usize..40, 0..20),
        seeds in prop::collection::vec(0u64..u64::MAX, 0..20),
        statuses in prop::collection::vec(0u8..4, 0..20),
    ) {
        let n = label_lens.len().min(seeds.len()).min(statuses.len());
        let manifest = CampaignManifest {
            config_digest: digest,
            workers,
            entries: (0..n)
                .map(|i| ManifestEntry {
                    // Labels of arbitrary length, including Unicode.
                    label: "κ-".chars().chain(
                        std::iter::repeat_n('x', label_lens[i])
                    ).collect(),
                    seed: (seeds[i] % 3 != 0).then_some(seeds[i]),
                    status: match statuses[i] {
                        0 => EntryStatus::Pending,
                        1 => EntryStatus::Done,
                        2 => EntryStatus::Failed,
                        _ => EntryStatus::Aborted,
                    },
                    shard: i as u32 % workers,
                })
                .collect(),
        };
        let bytes = manifest.to_bytes();
        let restored = match CampaignManifest::from_bytes(&bytes) {
            Ok(m) => m,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(&restored, &manifest);
        prop_assert_eq!(restored.to_bytes(), bytes);
    }

    /// Stage checkpoints — including the full `RunCollection` with traces,
    /// sync, binning, and stitched profiles — round-trip bit-exactly.
    #[test]
    fn stage_checkpoint_round_trips(
        starts in prop::collection::vec(0u64..5_000_000, 1..10),
        ticks in prop::collection::vec(0u64..600_000, 0..30),
        medians in prop::collection::vec(10_000u64..1_000_000, 1..8),
        runs in prop::collection::vec(0u32..100, 0..40),
        vals in prop::collection::vec(-1.0e6f64..1.0e6, 0..40),
        execs in prop::collection::vec(0u32..32, 0..40),
        shape in 0u8..4,
    ) {
        let (with_ssp, with_collection) = (shape & 1 != 0, shape & 2 != 0);
        let collected: Vec<CollectedRun> = medians
            .iter()
            .map(|&m| CollectedRun {
                trace: build_trace(&starts, &ticks),
                sync: identity_sync(),
                steady_median_ns: m,
            })
            .collect();
        let binning = bin_durations(&medians, 0.05).expect("non-empty medians");
        let profile = |kind: ProfileKind| PowerProfile {
            label: "prop".to_string(),
            kind,
            store: build_store(&runs, &vals, &execs),
        };
        let stage = StageCheckpoint {
            label: "prop".to_string(),
            calibration: ReadDelayCalibration { median_rtt_ns: 1_000, assumed_sample_frac: 0.5 },
            timing: Some(TimingArtifact {
                sse_index: 2,
                exec_time_ns: medians[0],
                guidance: GuidanceEntry {
                    min_exec: SimDuration::from_micros(25),
                    max_exec: None,
                    runs: 200,
                    loi_interval: SimDuration::from_micros(10),
                    margin_frac: 0.02,
                },
                runs: 200,
                margin_frac: 0.02,
            }),
            ssp: with_ssp.then_some(SspArtifact {
                ssp_index: 9,
                throttle_detected: true,
                executions_per_run: 12,
                loi_target: 5,
            }),
            collection: with_collection.then(|| RunCollection {
                collected,
                binning,
                profiles: StitchedProfiles {
                    run: profile(ProfileKind::Run),
                    sse: profile(ProfileKind::Sse),
                    ssp: profile(ProfileKind::Custom("x".into())),
                },
            }),
        };
        let bytes = stage.to_bytes();
        let restored = match StageCheckpoint::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => return Err(format!("decode failed: {e}")),
        };
        prop_assert_eq!(&restored, &stage);
        prop_assert_eq!(restored.to_bytes(), bytes);
    }

    /// Arbitrary single-byte damage anywhere in an entry artifact never
    /// panics: it either still decodes (payload float bits) or surfaces a
    /// typed error.
    #[test]
    fn byte_damage_never_panics(offset_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut bytes = golden_entry().to_bytes();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= flip;
        let _ = EntryArtifact::from_bytes(&bytes); // must not panic
    }
}

// ---------------------------------------------------------------------
// Campaign digest sanity against real campaigns
// ---------------------------------------------------------------------

#[test]
fn campaign_digest_is_stable_and_sensitive() {
    use fingrav::core::checkpoint::campaign_digest;
    let machine = SimConfig::default().machine.clone();
    let build = |runs: u32| {
        let mut c = Campaign::new(RunnerConfig::quick(runs));
        c.add_all(
            suite::gemm_suite(&machine)
                .into_iter()
                .take(3)
                .map(|k| k.desc),
        );
        c
    };
    assert_eq!(campaign_digest(&build(6)), campaign_digest(&build(6)));
    assert_ne!(campaign_digest(&build(6)), campaign_digest(&build(7)));
}
