//! Failure-injection robustness: the methodology must degrade gracefully —
//! not collapse — when the platform is far noisier than the defaults
//! (sloppy host timers, jittery dispatch, heavy counter drift, wild
//! execution-time variation).

use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{SimConfig, Simulation, VariationConfig};
use fingrav::workloads::suite;

#[test]
fn survives_sloppy_host_timers() {
    // 2 us timer noise and 50% jitter on dispatch/timestamp paths: an
    // order of magnitude worse than the defaults.
    let mut cfg = SimConfig::default();
    cfg.host.timer_noise_ns = 2_000.0;
    cfg.host.dispatch_jitter_frac = 0.5;
    cfg.host.timestamp_rtt_jitter_frac = 0.5;
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 301).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(40));
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles despite noisy timers");
    assert!(report.golden_runs > 0);
    let ssp = report.ssp_mean_total_w.expect("SSP measured");
    assert!(
        (500.0..800.0).contains(&ssp),
        "SSP {ssp} W should stay in the plausible band"
    );
}

#[test]
fn survives_heavy_counter_drift() {
    // 1000 ppm drift — fifty times the default — is cancelled by the
    // two-anchor sync, leaving profiles intact.
    let mut cfg = SimConfig::default();
    cfg.clocks.gpu_drift_ppm = 1_000.0;
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 302).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(40));
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles despite heavy drift");
    let drift = report.estimated_drift_ppm.expect("drift estimated");
    assert!(
        (drift - 1_000.0).abs() < 300.0,
        "estimated drift {drift:.0} ppm should track the configured 1000 ppm"
    );
    assert!(report.ssp_loi_count() > 0);
}

#[test]
fn drift_uncorrected_still_produces_a_profile() {
    // With correction off, single-anchor sync mis-places logs by a few
    // microseconds over a run — small against the 1 ms logging grid, so
    // the pipeline keeps functioning (quantifying the error is the
    // ablation binary's job).
    let mut cfg = SimConfig::default();
    cfg.clocks.gpu_drift_ppm = 1_000.0;
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 303).expect("valid");
    let mut runner = FingravRunner::new(
        &mut gpu,
        RunnerConfig {
            drift_correction: false,
            ..RunnerConfig::quick(30)
        },
    );
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles without drift correction");
    assert!(report.estimated_drift_ppm.is_none());
    assert!(report.ssp_loi_count() > 0);
}

#[test]
fn survives_wild_execution_variation() {
    // 2% jitter, 10% outlier executions, 25% pathological runs: binning
    // has to work hard, but the golden set must still exist and the SSP
    // power must stay physical.
    let cfg = SimConfig {
        variation: VariationConfig {
            jitter_frac: 0.02,
            outlier_prob: 0.10,
            run_outlier_prob: 0.25,
            ..VariationConfig::default()
        },
        ..SimConfig::default()
    };
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 304).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(60));
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles despite wild variation");
    assert!(report.golden_runs > 0, "some golden runs must survive");
    assert!(
        report.golden_runs < report.runs_executed,
        "with 25% pathological runs, binning must discard something"
    );
    // Under this much noise the SSP onset estimate degrades (it can land
    // in the boost excursion), but the answer must stay physical — between
    // deep idle and the instantaneous boost peak.
    let ssp = report.ssp_mean_total_w.expect("SSP measured");
    assert!((450.0..950.0).contains(&ssp), "SSP {ssp} W");
}

#[test]
fn survives_a_much_coarser_fine_logger() {
    // A platform whose "fine" logger is 5 ms instead of 1 ms: the window
    // formula and probes adapt (more executions per run), and profiling
    // still completes.
    let mut cfg = SimConfig::default();
    cfg.telemetry.logger_period = fingrav::sim::SimDuration::from_millis(5);
    cfg.telemetry.logger_window = fingrav::sim::SimDuration::from_millis(5);
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 305).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(30));
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles on a 5 ms platform");
    // ~220 us executions against a 5 ms window: >20 executions needed.
    assert!(
        report.ssp_index >= 20,
        "SSP index {} must scale with the wider window",
        report.ssp_index
    );
    assert!(report.ssp_loi_count() > 0);
}
