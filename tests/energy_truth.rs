//! Ground-truth energy validation: the paper's core claim is that FinGraV's
//! SSP profile yields accurate power — and therefore energy — while naive
//! (SSE) measurement can be off by tens of percent. The simulator can
//! integrate *instantaneous* power over a settled execution, giving the
//! true energy no real platform can observe; FinGraV's estimate must match
//! it, and the naive estimate must miss it.

use fingrav::core::energy::energy_joules;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

/// Integrates ground-truth instantaneous power over one settled
/// steady-state *period* (an execution plus its launch gap) of a long
/// back-to-back burst, returning (energy per period in joules, period
/// length in seconds).
///
/// The period — not the bare execution — is the right reference for the
/// windowed-average SSP power: applications launch kernels back to back,
/// and the averaging logger measures exactly that duty-cycled sustained
/// draw.
fn true_energy_per_period(seed: u64, desc: &fingrav::sim::KernelDesc, execs: u32) -> (f64, f64) {
    let mut cfg = SimConfig::default();
    cfg.telemetry.record_instant_trace = true;
    let sensor_s = cfg.telemetry.sensor_period.as_secs_f64();
    let mut sim = Simulation::new(cfg, seed).expect("valid");
    let k = Simulation::register_kernel(&mut sim, desc.clone()).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .launch_timed(k, execs)
        .sleep(SimDuration::from_millis(1))
        .stop_power_logger()
        .build();
    let trace = sim.run_script(&script).expect("script");

    // Integrate over the settled back half of the burst (many periods, so
    // the sensor grid's quantization against the ~50 us periods averages
    // out), then divide by the period count. Skip the very last execution
    // so the span ends at a launch boundary.
    let all = &trace.truth.executions;
    let first = all.len() / 2;
    let last = all.len() - 1; // span [start(first), start(last))
    let n_periods = (last - first) as f64;
    let start = all[first].start.as_nanos();
    let end = all[last].start.as_nanos();
    let joules: f64 = trace
        .truth
        .instant_power
        .iter()
        .filter(|(t, _)| t.as_nanos() > start && t.as_nanos() <= end)
        .map(|(_, p)| p.total() * sensor_s)
        .sum();
    (joules / n_periods, (end - start) as f64 * 1e-9 / n_periods)
}

#[test]
fn ssp_energy_matches_period_truth_for_short_kernels() {
    let machine = SimConfig::default().machine.clone();
    let desc = suite::cb_gemm(&machine, 2048);

    let (true_j, true_period_s) = true_energy_per_period(201, &desc, 120);

    let mut gpu = Simulation::new(SimConfig::default(), 202).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(80));
    let report = runner.profile(&desc).expect("profiles");
    let ssp_w = report.ssp_mean_total_w.expect("SSP measured");
    // Use the ground-truth period so the comparison isolates the *power*
    // estimate (CPU-observed times include launch overheads).
    let ssp_j = energy_joules(ssp_w, (true_period_s * 1e9) as u64);

    let err = (ssp_j - true_j).abs() / true_j;
    assert!(
        err < 0.15,
        "SSP energy {ssp_j:.6} J vs ground truth {true_j:.6} J -> {:.0}% error",
        err * 100.0
    );
}

#[test]
fn sse_energy_misses_ground_truth_for_short_kernels() {
    // The headline: for a sub-window kernel the naive (SSE) energy estimate
    // is wildly below the truth, while the SSP estimate lands close.
    let machine = SimConfig::default().machine.clone();
    let desc = suite::cb_gemm(&machine, 2048);

    let (true_j, true_period_s) = true_energy_per_period(203, &desc, 120);

    let mut gpu = Simulation::new(SimConfig::default(), 204).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(80));
    let report = runner.profile(&desc).expect("profiles");
    let sse_w = report.sse_mean_total_w.expect("SSE measured");
    let ssp_w = report.ssp_mean_total_w.expect("SSP measured");
    let ns = (true_period_s * 1e9) as u64;

    let sse_err = (energy_joules(sse_w, ns) - true_j).abs() / true_j;
    let ssp_err = (energy_joules(ssp_w, ns) - true_j).abs() / true_j;
    assert!(
        sse_err > 0.3,
        "naive SSE energy should miss badly, got {:.0}%",
        sse_err * 100.0
    );
    assert!(
        ssp_err < 0.15,
        "SSP energy should land close, got {:.0}%",
        ssp_err * 100.0
    );
    assert!(
        sse_err > 3.0 * ssp_err,
        "differentiation must buy at least 3x accuracy: SSE {:.0}% vs SSP {:.0}%",
        sse_err * 100.0,
        ssp_err * 100.0
    );
}

#[test]
fn ssp_energy_matches_period_truth_for_long_kernels() {
    // Above the averaging window the two estimates converge; both should
    // land near the truth.
    let machine = SimConfig::default().machine.clone();
    let desc = suite::cb_gemm(&machine, 8192);

    let (true_j, true_period_s) = true_energy_per_period(205, &desc, 16);

    let mut gpu = Simulation::new(SimConfig::default(), 206).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(20));
    let report = runner.profile(&desc).expect("profiles");
    let ssp_w = report.ssp_mean_total_w.expect("SSP measured");
    let ssp_j = energy_joules(ssp_w, (true_period_s * 1e9) as u64);

    let err = (ssp_j - true_j).abs() / true_j;
    assert!(
        err < 0.10,
        "SSP energy {ssp_j:.4} J vs ground truth {true_j:.4} J -> {:.0}% error",
        err * 100.0
    );
    // And the per-period energy is watt-seconds-plausible: ~1.2 J for a
    // ~1.75 ms kernel near 700 W.
    assert!(true_j > 0.8 && true_j < 1.8, "true energy {true_j} J");
}
