//! FinGraV against its baselines: each removed ingredient must cost
//! measurable fidelity (the point of paper Fig. 5 and Section VII).

use fingrav::baselines::common::BaselineConfig;
use fingrav::baselines::{coarse, single_run, unsynchronized};
use fingrav::core::profile::{PowerAxis, ProfileAxis};
use fingrav::core::regression;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::core::stats;
use fingrav::sim::{SimConfig, Simulation};
use fingrav::workloads::suite;

fn r2(profile: &fingrav::core::profile::PowerProfile) -> f64 {
    let (xs, ys) = profile.series(ProfileAxis::RunTime, PowerAxis::Total);
    if xs.len() < 6 {
        return 0.0;
    }
    // A profile so degenerate that no quartic fits (e.g. the naive grid
    // collapsing to a handful of distinct x positions) is maximally
    // incoherent.
    let Ok(fit) = regression::degree4(&xs, &ys) else {
        return 0.0;
    };
    let mean = stats::mean(&ys).expect("non-empty");
    let tss: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let rss: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(&x, &y)| (fit.eval(x) - y).powi(2))
        .sum();
    1.0 - rss / tss.max(1e-9)
}

#[test]
fn synchronized_profile_is_more_coherent_than_unsynchronized() {
    // A wide random pre-launch delay (several logging windows) makes the
    // comparison discriminating rather than a coin flip on the jitter
    // seed: synchronized placement is immune to the delay because each log
    // is placed from its GPU tick stamp, while naive grid placement counts
    // periods from the script origin and smears by the full delay range.
    // Both collections use the same delay, so the conditions stay
    // like-for-like (FinGraV's step 5 requires at least one window; more
    // only improves TOI coverage).
    let delay_max = fingrav::sim::SimDuration::from_millis(3);
    let sim_cfg = SimConfig::default();
    let machine = sim_cfg.machine.clone();
    let kernel = suite::cb_gemm(&machine, 4096);

    let mut gpu = Simulation::new(sim_cfg.clone(), 81).expect("valid");
    let runner_cfg = RunnerConfig {
        random_delay_max: delay_max,
        ..RunnerConfig::quick(40)
    };
    let mut runner = FingravRunner::new(&mut gpu, runner_cfg);
    let report = runner.profile(&kernel).expect("profiles");
    // Clip to the busy window (ignore the logger drain): the validity
    // bitmap gates the run-time column without materializing points.
    let run_store = &report.run_profile.store;
    let busy_end = run_store
        .run_times_ns()
        .iter()
        .enumerate()
        .filter(|&(i, _)| run_store.in_exec(i))
        .map(|(_, &t)| t)
        .fold(0.0_f64, f64::max);
    let mut synced = report.run_profile.clone();
    synced.retain(|p| p.run_time_ns() >= 0.0 && p.run_time_ns() <= busy_end);

    let mut gpu = Simulation::new(sim_cfg, 82).expect("valid");
    let cfg = BaselineConfig {
        runs: 40,
        executions_per_run: report.executions_per_run,
        random_delay_max: delay_max,
        ..BaselineConfig::default()
    };
    let mut unsynced = unsynchronized::profile(&mut gpu, &kernel, &cfg).expect("baseline");
    unsynced.retain(|p| p.run_time_ns() >= 0.0 && p.run_time_ns() <= busy_end);

    let (r2_sync, r2_unsync) = (r2(&synced), r2(&unsynced));
    assert!(
        r2_sync > r2_unsync + 0.05,
        "synchronized R^2 {r2_sync:.3} must beat unsynchronized {r2_unsync:.3}"
    );
}

#[test]
fn coarse_sampler_misses_what_the_fine_logger_catches() {
    let machine = SimConfig::default().machine.clone();
    let kernel = suite::cb_gemm(&machine, 2048);
    let mut gpu = Simulation::new(SimConfig::default(), 83).expect("valid");
    let cfg = BaselineConfig {
        runs: 30,
        executions_per_run: 20,
        ..BaselineConfig::default()
    };
    let outcome = coarse::profile(&mut gpu, &kernel, &cfg).expect("coarse");
    assert!(
        outcome.miss_rate() > 0.5,
        "the 50 ms sampler should miss most ~2 ms runs, miss rate {:.0}%",
        outcome.miss_rate() * 100.0
    );
}

#[test]
fn single_run_cannot_build_a_fine_grain_profile() {
    let machine = SimConfig::default().machine.clone();
    let kernel = suite::cb_gemm(&machine, 2048);

    let mut gpu = Simulation::new(SimConfig::default(), 84).expect("valid");
    let cfg = BaselineConfig {
        runs: 1,
        executions_per_run: 20,
        ..BaselineConfig::default()
    };
    let single = single_run::profile(&mut gpu, &kernel, &cfg).expect("single run");

    let mut gpu = Simulation::new(SimConfig::default(), 85).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(40));
    let fingrav = runner.profile(&kernel).expect("profiles");

    assert!(
        fingrav.run_profile.len() > 5 * single.len(),
        "multi-run stitching ({} points) must dwarf a single run ({} points)",
        fingrav.run_profile.len(),
        single.len()
    );
}
