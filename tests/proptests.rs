//! Property-based tests (proptest) on the methodology's core invariants.

use fingrav::core::binning::bin_durations;
use fingrav::core::energy::{energy_joules, sequence_energy_joules, SequenceStep};
use fingrav::core::guidance::GuidanceTable;
use fingrav::core::regression::PolyFit;
use fingrav::core::stats::{median, median_u64, quantile};
use fingrav::core::sync::{ReadDelayCalibration, TimeSync};
use fingrav::sim::telemetry::AveragingPowerLogger;
use fingrav::sim::{ComponentPower, CpuTime, GpuTicks, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    // ------------------------------------------------------------------
    // Time sync
    // ------------------------------------------------------------------

    /// Two-anchor sync recovers arbitrary offset + drift: any tick between
    /// the anchors maps back to its true CPU time within a tick.
    #[test]
    fn two_anchor_sync_roundtrips(
        offset_ns in 0u64..10_000_000_000,
        drift_ppm in -500.0f64..500.0,
        span_ms in 1u64..1_000,
        frac in 0.0f64..1.0,
    ) {
        let hz = 100e6 * (1.0 + drift_ppm * 1e-6);
        let tick_at = |cpu_ns: u64| -> u64 {
            ((cpu_ns - offset_ns.min(cpu_ns)) as f64 * hz / 1e9) as u64
        };
        let t0 = offset_ns + 1_000_000;
        let t1 = t0 + span_ms * 1_000_000;
        let read = |cpu: u64| fingrav::sim::TimestampRead {
            cpu_before: CpuTime::from_nanos(cpu),
            cpu_after: CpuTime::from_nanos(cpu),
            ticks: GpuTicks::from_raw(tick_at(cpu)),
        };
        let calib = ReadDelayCalibration { median_rtt_ns: 0, assumed_sample_frac: 0.5 };
        let sync = TimeSync::from_two_anchors(&read(t0), &read(t1), &calib).unwrap();

        let mid = t0 + ((t1 - t0) as f64 * frac) as u64;
        let recovered = sync.cpu_ns_of_ticks(tick_at(mid));
        // Tick quantization bounds the error to ~2 tick periods.
        prop_assert!((recovered - mid as f64).abs() < 25.0,
            "recovered {recovered} vs true {mid}");
    }

    // ------------------------------------------------------------------
    // Binning
    // ------------------------------------------------------------------

    /// Binning always partitions the input, the golden bin respects the
    /// margin, and no other bin out-populates it.
    #[test]
    fn binning_invariants(
        durations in prop::collection::vec(50_000u64..500_000, 1..200),
        margin in 0.0f64..0.2,
    ) {
        let binning = bin_durations(&durations, margin).unwrap();

        // Partition: every index appears exactly once.
        let mut seen: Vec<usize> = binning.bins.iter()
            .flat_map(|b| b.members.iter().copied())
            .collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..durations.len()).collect::<Vec<_>>());

        // Golden bin width obeys the margin.
        let g = binning.golden_bin();
        prop_assert!(g.high_ns as f64 <= g.low_ns as f64 * (1.0 + margin) + 1.0);

        // Modal: no other bin has more members.
        for (i, b) in binning.bins.iter().enumerate() {
            if i != binning.golden {
                prop_assert!(b.count() <= g.count());
            }
        }

        // Members actually have durations inside the bin bounds.
        for &m in g.members.iter() {
            prop_assert!(g.contains(durations[m]));
        }
    }

    // ------------------------------------------------------------------
    // Averaging logger
    // ------------------------------------------------------------------

    /// A windowed average always lies between the window's min and max
    /// sample, and equals the value exactly for constant input.
    #[test]
    fn logger_average_is_bounded(
        powers in prop::collection::vec(50.0f64..1000.0, 5..100),
    ) {
        let mut logger = AveragingPowerLogger::new(SimDuration::from_millis(1));
        logger.set_enabled(true);
        let step = 20_000u64; // 20 us
        for (i, &p) in powers.iter().enumerate() {
            logger.push_sample(
                SimTime::from_nanos(1 + i as u64 * step),
                ComponentPower::new(p, 0.0, 0.0, 0.0),
            );
        }
        let emit_t = SimTime::from_nanos(1 + (powers.len() as u64 - 1) * step);
        logger.emit(emit_t, GpuTicks::from_raw(0));
        // The pending count is the authoritative way to observe how many
        // logs accumulated; draining is reserved for consuming them.
        prop_assert_eq!(logger.pending_logs(), 1);
        let logs = logger.drain_logs();
        prop_assert_eq!(logs.len(), 1);
        let avg = logs[0].avg.xcd;
        // Only samples inside the trailing window contribute.
        let cutoff = emit_t.as_nanos().saturating_sub(1_000_000);
        let in_window: Vec<f64> = powers.iter().enumerate()
            .filter(|(i, _)| {
                let t = 1 + *i as u64 * step;
                t > cutoff && t <= emit_t.as_nanos()
            })
            .map(|(_, &p)| p)
            .collect();
        let lo = in_window.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = in_window.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg {avg} outside [{lo}, {hi}]");
    }

    // ------------------------------------------------------------------
    // Stats
    // ------------------------------------------------------------------

    /// `median`/`quantile` tolerate NaN-poisoned samples (reachable since
    /// the DVFS idle-power windows poison with NaN): no panic, and any
    /// non-NaN result is bounded by the finite samples. NaN-free inputs
    /// keep the textbook median.
    #[test]
    fn stats_tolerate_nan_poisoned_inputs(
        vals in prop::collection::vec(-1000.0f64..1000.0, 1..40),
        nan_mask in 0u64..u64::MAX,
        p in 0.0f64..1.0,
    ) {
        let poisoned: Vec<f64> = vals.iter().enumerate()
            .map(|(i, &v)| if nan_mask & (1 << (i % 64)) != 0 { f64::NAN } else { v })
            .collect();
        let med = median(&poisoned).expect("non-empty input");
        let q = quantile(&poisoned, p).expect("non-empty input");
        let finite: Vec<f64> = poisoned.iter().copied().filter(|v| !v.is_nan()).collect();
        let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !med.is_nan() {
            prop_assert!(med >= lo && med <= hi, "median {med} outside [{lo}, {hi}]");
        }
        if !q.is_nan() {
            prop_assert!(q >= lo && q <= hi, "quantile {q} outside [{lo}, {hi}]");
        }
        if finite.len() == poisoned.len() {
            let mut sorted = finite;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = sorted.len();
            let want = if n % 2 == 1 {
                sorted[n / 2]
            } else {
                0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
            };
            prop_assert_eq!(med, want);
        }
    }

    /// `median_u64` stays within the sample range even when every sample
    /// sits above `u64::MAX / 2` (absolute-ns stamps, raw tick counters).
    #[test]
    fn median_u64_never_overflows(
        vals in prop::collection::vec(u64::MAX / 2..u64::MAX, 1..40),
    ) {
        let m = median_u64(&vals).expect("non-empty input");
        let lo = *vals.iter().min().unwrap();
        let hi = *vals.iter().max().unwrap();
        prop_assert!(m >= lo && m <= hi, "median {m} outside [{lo}, {hi}]");
    }

    // ------------------------------------------------------------------
    // Regression
    // ------------------------------------------------------------------

    /// Fitting an exact polynomial of degree <= 4 recovers it pointwise.
    #[test]
    fn quartic_fit_recovers_exact_polynomials(
        c0 in -100.0f64..100.0,
        c1 in -10.0f64..10.0,
        c2 in -1.0f64..1.0,
        c3 in -0.1f64..0.1,
        c4 in -0.01f64..0.01,
    ) {
        let f = |x: f64| c0 + c1 * x + c2 * x * x + c3 * x.powi(3) + c4 * x.powi(4);
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let fit = PolyFit::fit(&xs, &ys, 4).unwrap();
        for &x in xs.iter().step_by(7) {
            let scale = f(x).abs().max(1.0);
            prop_assert!((fit.eval(x) - f(x)).abs() < 1e-6 * scale);
        }
    }

    // ------------------------------------------------------------------
    // Guidance
    // ------------------------------------------------------------------

    /// Every execution time maps to exactly one guidance row, and the LOI
    /// recommendation is monotone in execution time within a row.
    #[test]
    fn guidance_lookup_total(exec_us in 1u64..100_000) {
        let table = GuidanceTable::paper();
        let exec = SimDuration::from_micros(exec_us);
        let entry = table.lookup(exec);
        prop_assert!(entry.runs >= 200);
        prop_assert!(entry.margin_frac > 0.0 && entry.margin_frac <= 0.05);
        prop_assert!(entry.recommended_lois(exec) >= 1);
        // Covering row (or clamped end rows).
        if exec >= SimDuration::from_micros(25) {
            prop_assert!(entry.covers(exec));
        }
    }

    // ------------------------------------------------------------------
    // Energy
    // ------------------------------------------------------------------

    /// Sequence energy equals the sum of its steps and scales linearly.
    #[test]
    fn energy_additivity(
        powers in prop::collection::vec(10.0f64..1000.0, 1..20),
        time_ns in 1_000u64..10_000_000,
        count in 1u64..100,
    ) {
        let steps: Vec<SequenceStep> = powers.iter().map(|&p| SequenceStep {
            power_w: p,
            exec_time_ns: time_ns,
            count,
        }).collect();
        let total = sequence_energy_joules(&steps);
        let by_hand: f64 = powers.iter()
            .map(|&p| energy_joules(p, time_ns) * count as f64)
            .sum();
        prop_assert!((total - by_hand).abs() < 1e-9 * by_hand.max(1.0));
        prop_assert!(total >= 0.0);
    }

    // ------------------------------------------------------------------
    // Time arithmetic
    // ------------------------------------------------------------------

    /// SimTime/SimDuration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrips(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur).duration_since(t), dur);
        prop_assert_eq!((t + dur).saturating_sub(dur), t);
        prop_assert!(t.saturating_sub(dur) <= t);
    }

    /// A kernel's duration under an arbitrary mid-execution frequency
    /// schedule is bounded by its durations at the fastest and slowest
    /// clocks visited — progress integration never loses or invents work.
    #[test]
    fn device_progress_bounded_under_frequency_changes(
        switch_points_us in prop::collection::vec(1u64..500, 0..8),
        freqs in prop::collection::vec(700.0f64..2100.0, 1..9),
    ) {
        use fingrav::sim::device::GpuDevice;
        use fingrav::sim::rng::SimRng;
        use fingrav::sim::{Activity, KernelDesc, VariationConfig};

        let base_us = 300u64;
        let mut device = GpuDevice::new(VariationConfig::none(), 2100.0, 2100.0);
        let handle = device
            .register_kernel(KernelDesc {
                name: "prop".into(),
                base_exec: SimDuration::from_micros(base_us),
                freq_insensitive_frac: 0.3,
                activity: Activity::new(0.5, 0.5, 0.5),
                compute_utilization: 0.5,
                flops: 1.0,
                hbm_bytes: 1.0,
                llc_bytes: 1.0,
                workgroups: 8,
            })
            .expect("valid kernel");
        let mut rng = SimRng::from_streams(1, 1);
        let (mut generation, mut predicted) =
            device.begin_execution(handle, SimTime::ZERO, &mut rng);

        let mut switches: Vec<u64> = switch_points_us;
        switches.sort_unstable();
        let mut f_min_visited = 2100.0f64;
        let mut f_max_visited = 2100.0f64;
        for (i, &at_us) in switches.iter().enumerate() {
            let at = SimTime::from_micros(at_us);
            if at >= predicted {
                break;
            }
            let f = freqs[i % freqs.len()];
            if let Some((g, p)) = device.set_frequency(f, at) {
                generation = g;
                predicted = p;
                f_min_visited = f_min_visited.min(f);
                f_max_visited = f_max_visited.max(f);
            }
        }
        let record = device
            .complete(generation, predicted)
            .expect("completion with current generation");
        let duration_us = record.duration().as_nanos() as f64 / 1e3;

        // Bounds: time at the fastest clock visited <= actual <= slowest.
        let factor = |f: f64| 0.3 + 0.7 * (2100.0 / f);
        let lo = base_us as f64 * factor(f_max_visited) - 1.0;
        let hi = base_us as f64 * factor(f_min_visited) + 1.0;
        prop_assert!(
            duration_us >= lo && duration_us <= hi,
            "duration {duration_us} outside [{lo}, {hi}]"
        );
    }

    /// GPU clock conversion is monotone for any drift.
    #[test]
    fn gpu_clock_monotone_under_drift(
        drift in -400.0f64..400.0,
        times in prop::collection::vec(0u64..1_000_000_000u64, 2..50),
    ) {
        let clock = fingrav::sim::clock::GpuClock::new(100e6, drift, 7);
        let mut sorted = times;
        sorted.sort_unstable();
        let ticks: Vec<u64> = sorted.iter()
            .map(|&t| clock.ticks_at(SimTime::from_nanos(t)).as_raw())
            .collect();
        for w in ticks.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The engine's hybrid queue (periodic slot cursors merged with a
    /// heap of irregular events) pops in exactly the order of the plain
    /// heap reference — identical times *and* identical FIFO tie order —
    /// on random interleaved schedules.
    ///
    /// Times are drawn from a deliberately dense range so that same-instant
    /// collisions (the FIFO tie-break path) are exercised constantly.
    #[test]
    fn hybrid_queue_pops_in_exact_heap_reference_order(
        // Each op packs (selector, time, pop count): the vendored proptest
        // has no tuple strategies, so decode the fields from one integer.
        raw_ops in prop::collection::vec(0u64..(8 * 64 * 4), 1..200),
    ) {
        use fingrav::sim::event::{EventQueue, HybridQueue, Popped};

        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Kind {
            Slot(usize),
            Irregular(u64),
        }
        let to_kind = |p: Popped<u64>| match p {
            Popped::Periodic(slot) => Kind::Slot(slot),
            Popped::Irregular(payload) => Kind::Irregular(payload),
        };

        let mut hybrid: HybridQueue<u64, 4> = HybridQueue::new();
        let mut reference: EventQueue<Kind> = EventQueue::new();
        // `HybridQueue` keeps its slot state private, so mirror which
        // cursors are armed externally: a slot may only be re-armed after
        // it has been popped, exactly as the engine re-arms its streams.
        let mut armed = [false; 4];
        let mut next_payload = 0u64;

        for &raw in &raw_ops {
            let selector = raw % 8;
            let at = SimTime::from_nanos((raw / 8) % 64);
            let pops = (raw / (8 * 64)) as usize % 4;
            let slot = selector as usize;
            if slot < 4 {
                if !armed[slot] {
                    hybrid.arm(slot, at);
                    reference.schedule(at, Kind::Slot(slot));
                    armed[slot] = true;
                }
            } else {
                next_payload += 1;
                hybrid.schedule(at, next_payload);
                reference.schedule(at, Kind::Irregular(next_payload));
            }
            for _ in 0..pops {
                let got = hybrid.pop().map(|(t, p)| (t, to_kind(p)));
                if let Some((_, Kind::Slot(s))) = got {
                    armed[s] = false;
                }
                prop_assert_eq!(got, reference.pop());
            }
        }
        // Drain both queues to the end: every remaining event must match.
        loop {
            let got = hybrid.pop().map(|(t, p)| (t, to_kind(p)));
            let want = reference.pop();
            let done = got.is_none() && want.is_none();
            prop_assert_eq!(got, want);
            if done {
                break;
            }
        }
    }
}
