//! Checkpoint/resume determinism under fault injection: a campaign cut at
//! *every* entry boundary of a 6-entry campaign — by an injected backend
//! failure or by a campaign-wide cancellation fired mid-script from
//! inside the target entry — and then resumed from its checkpoint must
//! produce reports, CSV artefacts, and gathered profile stores
//! byte-identical to an uninterrupted run, under both error policies and
//! across worker counts 1/2/8. Damaged or config-mismatched checkpoints
//! are rejected with typed errors, never panics.

use std::path::{Path, PathBuf};

use fingrav::core::backend::{BackendFactory, PowerBackend, SimulationFactory};
use fingrav::core::campaign::{Campaign, CampaignReport};
use fingrav::core::checkpoint::{gather, CheckpointDir, EntryStatus, StageCheckpoint};
use fingrav::core::error::{MethodologyError, MethodologyResult};
use fingrav::core::executor::{
    CampaignExecutor, CancellationToken, ErrorPolicy, NoopCampaignObserver,
};
use fingrav::core::profile::ProfileAxis;
use fingrav::core::report::profile_to_csv;
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::core::stages::StagePipeline;
use fingrav::sim::kernel::{KernelDesc, KernelHandle};
use fingrav::sim::power::Activity;
use fingrav::sim::script::Script;
use fingrav::sim::session::{AbortHandle, TelemetrySink};
use fingrav::sim::time::SimDuration;
use fingrav::sim::trace::RunTrace;
use fingrav::sim::{SimConfig, Simulation};

// ---------------------------------------------------------------------
// Fault injection plumbing
// ---------------------------------------------------------------------

/// How the scripted fault manifests at the target entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// The backend for the target slot fails to come up (a hard error).
    FailEntry,
    /// The campaign-wide cancellation token fires from inside the target
    /// slot's session (before its third script), so the entry aborts
    /// mid-measurement and the rest of the campaign is cancelled.
    CancelCampaign,
}

/// A [`PowerBackend`] wrapper that optionally fires a cancellation token
/// after a scripted number of scripts, then passes through unchanged (so
/// healthy slots produce bit-identical traces to a plain `Simulation`).
struct FaultBackend {
    inner: Simulation,
    fire: Option<(CancellationToken, u32)>,
    scripts_seen: u32,
}

impl PowerBackend for FaultBackend {
    fn register_kernel(&mut self, desc: &KernelDesc) -> MethodologyResult<KernelHandle> {
        PowerBackend::register_kernel(&mut self.inner, desc)
    }

    fn run_script_observed(
        &mut self,
        script: &Script,
        sink: &mut dyn TelemetrySink,
        abort: &AbortHandle,
    ) -> MethodologyResult<RunTrace> {
        if let Some((token, after)) = &self.fire {
            if self.scripts_seen == *after {
                token.abort();
            }
        }
        self.scripts_seen += 1;
        PowerBackend::run_script_observed(&mut self.inner, script, sink, abort)
    }

    fn logger_window(&self) -> SimDuration {
        self.inner.logger_window()
    }

    fn coarse_logger_window(&self) -> SimDuration {
        self.inner.coarse_logger_window()
    }

    fn gpu_counter_hz(&self) -> f64 {
        self.inner.gpu_counter_hz()
    }
}

/// A factory that injects the scripted fault at one entry index and is a
/// transparent wrapper everywhere else.
struct FaultInjectingFactory {
    inner: SimulationFactory,
    target: usize,
    mode: FaultMode,
    cancel: CancellationToken,
}

impl BackendFactory for FaultInjectingFactory {
    type Backend = FaultBackend;

    fn create(&self, index: usize) -> MethodologyResult<FaultBackend> {
        if index == self.target && self.mode == FaultMode::FailEntry {
            return Err(MethodologyError::Backend(format!(
                "injected fault at slot {index}"
            )));
        }
        Ok(FaultBackend {
            inner: self.inner.create(index)?,
            fire: (index == self.target && self.mode == FaultMode::CancelCampaign)
                .then(|| (self.cancel.clone(), 2)),
            scripts_seen: 0,
        })
    }

    fn slot_seed_hint(&self, index: usize) -> Option<u64> {
        BackendFactory::slot_seed_hint(&self.inner, index)
    }
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

fn kernel(name: &str, us: u64, xcd: f64) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        base_exec: SimDuration::from_micros(us),
        freq_insensitive_frac: 0.4,
        activity: Activity::new(xcd, 0.4, 0.3),
        compute_utilization: xcd * 0.7,
        flops: 1e10,
        hbm_bytes: 1e7,
        llc_bytes: 1e8,
        workgroups: 128,
    }
}

/// The 6-entry campaign every cut point is exercised against.
fn campaign6() -> Campaign {
    let mut campaign = Campaign::new(RunnerConfig::quick(5));
    for i in 0..6usize {
        campaign.add(kernel(
            &format!("cut-k{i}"),
            60 + 12 * i as u64,
            0.35 + 0.08 * i as f64,
        ));
    }
    campaign
}

fn clean_factory() -> SimulationFactory {
    SimulationFactory::new(SimConfig::default(), 0xFA57)
}

/// Every CSV artefact the bench layer would render from a report (the
/// byte-identity claim covers these, not just the in-memory structs).
fn csvs_of(report: &CampaignReport) -> Vec<String> {
    report
        .reports
        .iter()
        .flat_map(|r| {
            [
                profile_to_csv(&r.run_profile, ProfileAxis::RunTime),
                profile_to_csv(&r.sse_profile, ProfileAxis::Toi),
                profile_to_csv(&r.ssp_profile, ProfileAxis::Toi),
            ]
        })
        .collect()
}

fn scratch_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fingrav-ckpt-{tag}-{}", std::process::id()))
}

// ---------------------------------------------------------------------
// The headline property
// ---------------------------------------------------------------------

/// Cuts the campaign at every entry index, under both fault modes and
/// both error policies, with the worker count rotating through 1/2/8 —
/// then resumes and asserts byte-identity of reports, CSVs, and gathered
/// stores against the uninterrupted reference.
#[test]
fn every_cut_point_resumes_byte_identical() {
    let campaign = campaign6();
    let clean = clean_factory();
    let reference = CampaignExecutor::serial()
        .run(&campaign, &clean)
        .expect("uninterrupted campaign profiles");
    let ref_json = serde_json::to_string(&reference).expect("serializes");
    let ref_csvs = csvs_of(&reference);

    let root = scratch_root("cuts");
    for cut in 0..campaign.len() {
        for mode in [FaultMode::FailEntry, FaultMode::CancelCampaign] {
            for policy in [ErrorPolicy::FailFast, ErrorPolicy::CollectAll] {
                let workers = [1, 2, 8][(cut + usize::from(mode == FaultMode::CancelCampaign)) % 3];
                let dir = root.join(format!("cut{cut}-{mode:?}-{policy:?}"));
                let cancel = CancellationToken::new();
                let faulty = FaultInjectingFactory {
                    inner: clean.clone(),
                    target: cut,
                    mode,
                    cancel: cancel.clone(),
                };
                let executor = CampaignExecutor::new(workers).error_policy(policy);
                let outcome = executor
                    .execute_sharded_observed(
                        &campaign,
                        &faulty,
                        &dir,
                        &NoopCampaignObserver,
                        &cancel,
                    )
                    .expect("checkpointing itself succeeds");
                assert!(
                    !outcome.is_complete(),
                    "cut {cut} {mode:?} {policy:?}: the fault must leave work undone"
                );
                let manifest = CheckpointDir::open(&dir)
                    .expect("checkpoint exists")
                    .read_manifest()
                    .expect("manifest decodes");
                assert!(!manifest.is_complete());
                assert!(manifest.entries[cut].status.needs_rerun());
                if mode == FaultMode::FailEntry {
                    assert_eq!(manifest.entries[cut].status, EntryStatus::Failed);
                } else {
                    assert_eq!(manifest.entries[cut].status, EntryStatus::Aborted);
                }

                // Resume with a healthy factory; only unfinished entries
                // are re-measured, on the same per-index seeds.
                let resumed = CampaignExecutor::new(workers)
                    .error_policy(policy)
                    .resume(&campaign, &clean, &dir)
                    .expect("resume completes");
                assert!(resumed.is_complete(), "cut {cut} {mode:?} {policy:?}");
                let report = resumed.into_report().expect("all entries report");
                assert_eq!(
                    serde_json::to_string(&report).expect("serializes"),
                    ref_json,
                    "cut {cut} {mode:?} {policy:?} ({workers} workers): resumed report drifted"
                );
                assert_eq!(
                    csvs_of(&report),
                    ref_csvs,
                    "cut {cut} {mode:?} {policy:?}: CSV artefacts drifted"
                );

                // The completed checkpoint gathers into stores matching
                // the reference reports byte for byte.
                let ckdir = CheckpointDir::open(&dir).expect("checkpoint exists");
                assert!(ckdir.read_manifest().expect("manifest").is_complete());
                let gathered = gather(&ckdir, &campaign).expect("gather succeeds");
                let mut expected_run = fingrav::core::store::ProfileStore::new();
                for r in &reference.reports {
                    expected_run.extend_from(&r.run_profile.store);
                }
                assert_eq!(gathered.run.to_bytes(), expected_run.to_bytes());
            }
        }
    }
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

/// A resume may use a different worker count than the original run; the
/// artefacts must not care.
#[test]
fn resume_with_a_different_worker_count_is_identical() {
    let campaign = campaign6();
    let clean = clean_factory();
    let reference = CampaignExecutor::serial()
        .run(&campaign, &clean)
        .expect("profiles");
    let root = scratch_root("workers");

    let cancel = CancellationToken::new();
    let faulty = FaultInjectingFactory {
        inner: clean.clone(),
        target: 3,
        mode: FaultMode::CancelCampaign,
        cancel: cancel.clone(),
    };
    let outcome = CampaignExecutor::new(2)
        .execute_sharded_observed(&campaign, &faulty, &root, &NoopCampaignObserver, &cancel)
        .expect("checkpointing succeeds");
    assert!(!outcome.is_complete());

    let resumed = CampaignExecutor::new(8)
        .resume(&campaign, &clean, &root)
        .expect("resume completes")
        .into_report()
        .expect("complete");
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&reference).unwrap(),
        "worker-count asymmetry between run and resume changed artefacts"
    );
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

/// Resuming a complete checkpoint restores from disk without touching the
/// factory: a factory that would fail every slot must never be asked.
#[test]
fn resume_of_a_complete_checkpoint_never_remeasures() {
    let campaign = campaign6();
    let clean = clean_factory();
    let root = scratch_root("noremeasure");
    let full = CampaignExecutor::new(2)
        .execute_sharded(&campaign, &clean, &root)
        .expect("checkpointing succeeds")
        .into_report()
        .expect("complete");

    struct PoisonFactory;
    impl BackendFactory for PoisonFactory {
        type Backend = Simulation;
        fn create(&self, index: usize) -> MethodologyResult<Simulation> {
            Err(MethodologyError::Backend(format!(
                "slot {index} must not be re-measured"
            )))
        }
    }
    let restored = CampaignExecutor::new(2)
        .resume(&campaign, &PoisonFactory, &root)
        .expect("pure restore")
        .into_report()
        .expect("complete");
    assert_eq!(
        serde_json::to_string(&restored).unwrap(),
        serde_json::to_string(&full).unwrap()
    );
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

// ---------------------------------------------------------------------
// Rejection paths: corruption and config drift
// ---------------------------------------------------------------------

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = std::fs::read(path).expect("readable");
    bytes[offset] ^= 0xff;
    std::fs::write(path, bytes).expect("writable");
}

#[test]
fn corrupted_checkpoints_are_rejected_with_typed_errors() {
    let campaign = campaign6();
    let clean = clean_factory();
    let root = scratch_root("corrupt");
    CampaignExecutor::new(2)
        .execute_sharded(&campaign, &clean, &root)
        .expect("checkpointing succeeds");

    // A flipped manifest magic byte: resume fails with a Checkpoint error
    // that names the cause, never a panic.
    let ckdir = CheckpointDir::open(&root).expect("open");
    flip_byte(&ckdir.manifest_path(), 0);
    let err = CampaignExecutor::new(2)
        .resume(&campaign, &clean, &root)
        .expect_err("corrupt manifest must be rejected");
    match &err {
        MethodologyError::Checkpoint(msg) => {
            assert!(msg.contains("not a campaign checkpoint"), "{msg}")
        }
        other => panic!("expected a Checkpoint error, got {other:?}"),
    }
    flip_byte(&ckdir.manifest_path(), 0); // restore

    // A truncated entry file is also typed, and so is gather over it.
    let (_, _, first_entry) = ckdir.entry_files().expect("entries")[0].clone();
    let full = std::fs::read(&first_entry).unwrap();
    std::fs::write(&first_entry, &full[..full.len() / 2]).unwrap();
    let err = CampaignExecutor::new(2)
        .resume(&campaign, &clean, &root)
        .expect_err("truncated entry must be rejected");
    assert!(matches!(err, MethodologyError::Checkpoint(_)));
    let err = gather(&ckdir, &campaign).expect_err("gather rejects it too");
    assert!(err.to_string().contains("truncated"), "{err}");
    std::fs::write(&first_entry, &full).unwrap();

    // Restored to health, everything works again.
    assert!(CampaignExecutor::new(2)
        .resume(&campaign, &clean, &root)
        .is_ok());
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

#[test]
fn config_drift_is_rejected_by_digest() {
    let campaign = campaign6();
    let clean = clean_factory();
    let root = scratch_root("digest");
    CampaignExecutor::new(2)
        .execute_sharded(&campaign, &clean, &root)
        .expect("checkpointing succeeds");

    // Same kernels, different methodology settings: the digest differs and
    // the checkpoint must refuse to resume under it.
    let mut drifted = Campaign::new(RunnerConfig::quick(9));
    for entry in campaign.entries() {
        drifted.add(entry.desc.clone());
    }
    let err = CampaignExecutor::new(2)
        .resume(&drifted, &clean, &root)
        .expect_err("config drift must be rejected");
    match &err {
        MethodologyError::Checkpoint(msg) => {
            assert!(msg.contains("different campaign"), "{msg}")
        }
        other => panic!("expected a Checkpoint error, got {other:?}"),
    }

    // So does a reordered entry list (digest covers order).
    let mut reordered = Campaign::new(RunnerConfig::quick(5));
    for entry in campaign.entries().iter().rev() {
        reordered.add(entry.desc.clone());
    }
    assert!(CampaignExecutor::new(2)
        .resume(&reordered, &clean, &root)
        .is_err());

    // A fresh execute_sharded must refuse to repurpose the directory for
    // a different campaign (its stale entry files would poison the run)...
    let err = CampaignExecutor::new(2)
        .execute_sharded(&drifted, &clean, &root)
        .expect_err("a foreign checkpoint directory must be refused");
    assert!(matches!(err, MethodologyError::Checkpoint(_)));
    // ...while the *same* campaign may re-run over its own checkpoint
    // (the persisted entries are re-verified against the fresh results).
    assert!(CampaignExecutor::new(2)
        .execute_sharded(&campaign, &clean, &root)
        .is_ok());
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

// ---------------------------------------------------------------------
// Gather's duplicate verification names shard and column
// ---------------------------------------------------------------------

#[test]
fn gather_verifies_duplicates_and_names_shard_and_column() {
    let campaign = campaign6();
    let clean = clean_factory();
    let root = scratch_root("dup");
    CampaignExecutor::new(2)
        .execute_sharded(&campaign, &clean, &root)
        .expect("checkpointing succeeds");
    let ckdir = CheckpointDir::open(&root).expect("open");

    // A byte-identical duplicate under another shard (the legitimate
    // crash-window case) is tolerated.
    let (shard, index, path) = ckdir.entry_files().expect("entries")[0].clone();
    let other_shard = shard + 40;
    let dup_path = ckdir.entry_path(other_shard, index);
    std::fs::create_dir_all(dup_path.parent().unwrap()).unwrap();
    std::fs::copy(&path, &dup_path).unwrap();
    let gathered = gather(&ckdir, &campaign).expect("identical duplicates are fine");
    assert_eq!(gathered.report.reports.len(), campaign.len());

    // A *disagreeing* duplicate is rejected, and the error names both
    // shards and the first differing column instead of a bare mismatch.
    let mut artifact = ckdir.read_entry(&dup_path).expect("decodes");
    let mut tampered = fingrav::core::store::ProfileStore::new();
    for (i, p) in artifact.report.run_profile.store.iter().enumerate() {
        let mut point = p.to_point();
        if i == 0 {
            point.power.xcd += 1.0;
        }
        tampered.push(point);
    }
    artifact.report.run_profile.store = tampered;
    std::fs::write(&dup_path, artifact.to_bytes()).unwrap();
    let err = gather(&ckdir, &campaign).expect_err("disagreeing duplicates are rejected");
    let msg = err.to_string();
    assert!(msg.contains(&format!("shard {shard}")), "{msg}");
    assert!(msg.contains(&format!("shard {other_shard}")), "{msg}");
    assert!(msg.contains("column `xcd`"), "{msg}");
    assert!(msg.contains("first at index 0"), "{msg}");

    // Resume performs the same duplicate verification before trusting any
    // copy — the diverged duplicate must not silently win the restore.
    let err = CampaignExecutor::new(2)
        .resume(&campaign, &clean, &root)
        .expect_err("resume rejects diverged duplicates too");
    let msg = err.to_string();
    assert!(msg.contains("column `xcd`"), "{msg}");
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}

// ---------------------------------------------------------------------
// Stage-level checkpointing: persist between stages, finalize restored
// ---------------------------------------------------------------------

/// The mid-entry boundary works end to end: artifacts persisted after the
/// run-collection stage and decoded back finalize into a report identical
/// to an unstaged `FingravRunner::profile` on the same seed.
#[test]
fn stage_checkpoint_survives_persistence_and_finalizes_identically() {
    let desc = kernel("stage-ckpt", 110, 0.6);
    let config = RunnerConfig::quick(6);

    let mut sim = Simulation::new(SimConfig::default(), 0x57A6E).unwrap();
    let mut runner = FingravRunner::new(&mut sim, config.clone());
    let direct = runner.profile(&desc).unwrap();

    let mut sim = Simulation::new(SimConfig::default(), 0x57A6E).unwrap();
    let handle = PowerBackend::register_kernel(&mut sim, &desc).unwrap();
    let mut pipeline = StagePipeline::new(&mut sim, config).unwrap();
    let calibration = pipeline.calibrate().unwrap();
    let timing = pipeline.timing_probe(handle, &calibration).unwrap();
    let ssp = pipeline.ssp_search(handle, &calibration, &timing).unwrap();
    let collection = pipeline
        .collect_runs(handle, &desc.name, &calibration, &timing, &ssp)
        .unwrap();

    // Persist the full stage state, round-trip it, then finalize from the
    // *restored* artifacts.
    let stage = StageCheckpoint {
        label: desc.name.clone(),
        calibration,
        timing: Some(timing),
        ssp: Some(ssp),
        collection: Some(collection),
    };
    let restored = StageCheckpoint::from_bytes(&stage.to_bytes()).unwrap();
    assert_eq!(restored, stage);
    let report = pipeline.finalize(
        &restored.label,
        &restored.calibration,
        &restored.timing.unwrap(),
        &restored.ssp.unwrap(),
        restored.collection.unwrap(),
    );
    assert_eq!(
        report, direct,
        "restored artifacts must finalize identically"
    );
}
