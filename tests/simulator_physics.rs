//! Physical-invariant tests of the simulated platform: power bounds,
//! frequency limits, thermal sanity, and the consistency between the
//! instantaneous sensor and the averaging logger.

use fingrav::core::backend::PowerBackend;
use fingrav::sim::{Script, SimConfig, SimDuration, Simulation};
use fingrav::workloads::suite;

fn heavy_run(cfg: SimConfig, seed: u64) -> fingrav::sim::RunTrace {
    let machine = cfg.machine.clone();
    let mut sim = Simulation::new(cfg, seed).expect("valid");
    let k =
        Simulation::register_kernel(&mut sim, suite::cb_gemm(&machine, 8192)).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .launch_timed(k, 10)
        .sleep(SimDuration::from_millis(2))
        .stop_power_logger()
        .build();
    sim.run_script(&script).expect("script")
}

#[test]
fn instantaneous_power_stays_in_physical_bounds() {
    let mut cfg = SimConfig::default();
    cfg.telemetry.record_instant_trace = true;
    let trace = heavy_run(cfg, 91);
    assert!(!trace.truth.instant_power.is_empty());
    for (_, p) in &trace.truth.instant_power {
        assert!(p.is_valid(), "invalid power reading {p}");
        let total = p.total();
        assert!(
            (50.0..1_200.0).contains(&total),
            "implausible total power {total} W"
        );
    }
}

#[test]
fn frequency_stays_within_limits() {
    let trace = heavy_run(SimConfig::default(), 92);
    let cfg = SimConfig::default();
    for &(_, f) in &trace.truth.freq_changes {
        assert!(
            f >= cfg.pm.f_min_mhz.min(cfg.pm.idle_f_mhz) - 1e-9,
            "frequency {f} below floor"
        );
        assert!(f <= cfg.pm.f_max_mhz + 1e-9, "frequency {f} above boost");
    }
}

#[test]
fn die_temperature_is_sane_and_rises_under_load() {
    let mut cfg = SimConfig::default();
    let initial = cfg.thermal.initial_c;
    cfg.telemetry.record_instant_trace = true;
    let trace = heavy_run(cfg, 93);
    let final_t = trace.truth.final_temp_c;
    assert!(
        final_t > initial,
        "a 20 ms heavy burst should warm the die: {initial} -> {final_t}"
    );
    assert!(final_t < 120.0, "implausible die temperature {final_t}");
}

#[test]
fn logged_averages_match_instantaneous_window_means() {
    // Conservation: every emitted log equals the average of the
    // instantaneous samples inside its trailing window.
    let mut cfg = SimConfig::default();
    cfg.telemetry.record_instant_trace = true;
    let window_ns = cfg.telemetry.logger_window.as_nanos();
    let mut sim = Simulation::new(cfg, 94).expect("valid");
    let machine = SimConfig::default().machine.clone();
    let k =
        Simulation::register_kernel(&mut sim, suite::cb_gemm(&machine, 4096)).expect("register");
    let script = Script::builder()
        .begin_run()
        .start_power_logger()
        .launch_timed(k, 12)
        .sleep(SimDuration::from_millis(2))
        .stop_power_logger()
        .build();
    let trace = sim.run_script(&script).expect("script");
    assert!(trace.power_logs.len() >= 3);

    // Reconstruct each log's window from ground truth.
    let gpu_hz = PowerBackend::gpu_counter_hz(&sim);
    let epoch_ticks = SimConfig::default().clocks.gpu_epoch_ticks;
    let drift = 1.0 + SimConfig::default().clocks.gpu_drift_ppm * 1e-6;
    for log in &trace.power_logs {
        let emit_ns = ((log.ticks.as_raw() - epoch_ticks) as f64 / (gpu_hz * drift) * 1e9) as u64;
        let lo = emit_ns.saturating_sub(window_ns);
        let samples: Vec<f64> = trace
            .truth
            .instant_power
            .iter()
            .filter(|(t, _)| t.as_nanos() > lo && t.as_nanos() <= emit_ns)
            .map(|(_, p)| p.total())
            .collect();
        assert!(!samples.is_empty(), "no ground-truth samples in window");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let logged = log.avg.total();
        assert!(
            (mean - logged).abs() < mean * 0.02 + 1.0,
            "window mean {mean:.1} vs logged {logged:.1}"
        );
    }
}

#[test]
fn session_sessions_are_independent_given_seeds() {
    let a = heavy_run(SimConfig::default(), 95);
    let b = heavy_run(SimConfig::default(), 95);
    assert_eq!(a, b, "same seed, same trace");
    let c = heavy_run(SimConfig::default(), 96);
    assert_ne!(a, c, "different seed, different trace");
}

#[test]
fn power_cap_respected_in_steady_state() {
    // Transient excursions above the cap are expected (that is the paper's
    // Fig. 6 spike), but the *settled* half of the burst must average at or
    // below the cap plus a small tolerance.
    let mut cfg = SimConfig::default();
    cfg.telemetry.record_instant_trace = true;
    let cap = cfg.pm.power_cap_w;
    let trace = heavy_run(cfg, 97);
    let t_end = trace
        .truth
        .executions
        .last()
        .expect("executions present")
        .end
        .as_nanos();
    let t_half = trace.truth.executions[0].start.as_nanos() + (t_end / 2);
    let settled: Vec<f64> = trace
        .truth
        .instant_power
        .iter()
        .filter(|(t, _)| t.as_nanos() > t_half && t.as_nanos() <= t_end)
        .map(|(_, p)| p.total())
        .collect();
    let mean = settled.iter().sum::<f64>() / settled.len().max(1) as f64;
    assert!(
        mean <= cap * 1.05,
        "settled mean power {mean:.0} W must respect the {cap:.0} W cap"
    );
}
