//! Execution-time binning and golden-run selection under injected
//! variation (paper solution S3, challenge C3).

use fingrav::core::binning::bin_durations;
use fingrav::core::outliers::{suggest_targets, OutlierTarget};
use fingrav::core::runner::{FingravRunner, RunnerConfig};
use fingrav::sim::{SimConfig, Simulation, VariationConfig};
use fingrav::workloads::suite;

#[test]
fn golden_runs_exclude_pathological_runs() {
    // Crank the pathological-run rate so the golden filter has real work.
    let cfg = SimConfig {
        variation: VariationConfig {
            run_outlier_prob: 0.3,
            ..VariationConfig::default()
        },
        ..SimConfig::default()
    };
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 61).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(50));
    let report = runner
        .profile(&suite::cb_gemm(&machine, 4096))
        .expect("profiles");
    let excluded = report.runs_executed - report.golden_runs;
    // ~30% of runs are pathological (+4-9% slower): they must fall outside
    // the 2% margin and be discarded.
    assert!(
        excluded as f64 >= 0.15 * report.runs_executed as f64,
        "only {excluded}/{} runs excluded despite 30% pathological rate",
        report.runs_executed
    );
    assert!(report.golden_runs > 0);
}

#[test]
fn disabling_variation_makes_every_run_golden() {
    // A memory-bound kernel: no cap/throttle dynamics, 92% of its runtime
    // is frequency-insensitive, so with variation disabled every run times
    // identically. (A throttling GEMM would still vary slightly with its
    // phase against the firmware's control grid.)
    let cfg = SimConfig::deterministic();
    let machine = cfg.machine.clone();
    let mut gpu = Simulation::new(cfg, 62).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(20));
    let report = runner
        .profile(&suite::mb_gemv(&machine, 8192))
        .expect("profiles");
    assert_eq!(
        report.golden_runs, report.runs_executed,
        "identical runs must all be golden"
    );
}

#[test]
fn wider_margin_admits_more_runs() {
    let run_with_margin = |margin: f64| -> (u32, u32) {
        let machine = SimConfig::default().machine.clone();
        let mut gpu = Simulation::new(SimConfig::default(), 63).expect("valid");
        let mut runner = FingravRunner::new(
            &mut gpu,
            RunnerConfig {
                margin_override: Some(margin),
                // No LOI top-up batches: keep run totals comparable.
                extra_run_batches: 0,
                ..RunnerConfig::quick(40)
            },
        );
        let r = runner
            .profile(&suite::cb_gemm(&machine, 4096))
            .expect("profiles");
        (r.golden_runs, r.runs_executed)
    };
    let (tight, total_a) = run_with_margin(0.005);
    let (loose, total_b) = run_with_margin(0.10);
    assert_eq!(total_a, total_b);
    assert!(
        loose > tight,
        "10% margin ({loose}) must admit more runs than 0.5% ({tight})"
    );
}

#[test]
fn outlier_band_workflow_selects_the_slow_population() {
    // Synthetic durations: a mode at 100 us and a slow population at 130 us.
    let mut durations = vec![100_000u64; 50];
    durations.extend(std::iter::repeat_n(130_000u64, 8));
    let binning = bin_durations(&durations, 0.05).expect("non-empty");
    assert_eq!(binning.golden_bin().count(), 50);

    let targets = suggest_targets(&durations, 0.05);
    assert_eq!(targets.len(), 1);
    let t: OutlierTarget = targets[0];
    let selected = t.select(&durations);
    assert_eq!(selected.len(), 8);
    assert!(selected.iter().all(|&i| durations[i] == 130_000));
}

#[test]
fn binning_partitions_all_runs() {
    let machine = SimConfig::default().machine.clone();
    let mut gpu = Simulation::new(SimConfig::default(), 64).expect("valid");
    let mut runner = FingravRunner::new(&mut gpu, RunnerConfig::quick(30));
    let report = runner
        .profile(&suite::mb_gemv(&machine, 8192))
        .expect("profiles");
    // Every executed run is either golden or excluded; never lost.
    assert!(report.golden_runs <= report.runs_executed);
    assert!(report.runs_executed >= 30);
}
